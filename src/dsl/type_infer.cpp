#include "dsl/type_infer.hpp"

namespace isamore {
namespace {

/** Result of binary int ops: both children the same int type. */
Type
joinInt(Type a, Type b)
{
    if (!a.isInt() || !b.isInt()) {
        return Type::bottom();
    }
    // Allow mixing widths by widening to the larger (LLVM-lowered code
    // often mixes i32 indices with i64 products after our frontend).
    return scalarBits(a.scalarKind()) >= scalarBits(b.scalarKind()) ? a : b;
}

Type
joinFloat(Type a, Type b)
{
    if (!a.isFloat() || !b.isFloat()) {
        return Type::bottom();
    }
    return scalarBits(a.scalarKind()) >= scalarBits(b.scalarKind()) ? a : b;
}

}  // namespace

Type
inferNodeType(Op op, const Payload& payload,
              const std::vector<Type>& childTypes)
{
    auto child = [&](size_t i) -> Type {
        return i < childTypes.size() ? childTypes[i] : Type::bottom();
    };

    switch (op) {
      case Op::Lit:
        return payload.kind == Payload::Kind::Float ? Type::f32()
                                                    : Type::i32();
      case Op::Arg:
        return Type::scalar(argKind(payload));
      case Op::Hole:
      case Op::PatRef:
        return Type::bottom();

      case Op::Neg:
      case Op::Not:
      case Op::Abs:
        return child(0).isInt() ? child(0) : Type::bottom();
      case Op::FNeg:
      case Op::FAbs:
      case Op::FSqrt:
        return child(0).isFloat() ? child(0) : Type::bottom();
      case Op::IToF:
        return child(0).isInt() ? Type::f32() : Type::bottom();
      case Op::FToI:
        return child(0).isFloat() ? Type::i32() : Type::bottom();

      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Rem:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::Shr:
      case Op::AShr:
      case Op::Min:
      case Op::Max:
        return joinInt(child(0), child(1));

      case Op::Eq:
      case Op::Ne:
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
        return child(0).isInt() && child(1).isInt() ? Type::i1()
                                                    : Type::bottom();

      case Op::FAdd:
      case Op::FSub:
      case Op::FMul:
      case Op::FDiv:
      case Op::FMin:
      case Op::FMax:
        return joinFloat(child(0), child(1));

      case Op::FEq:
      case Op::FLt:
      case Op::FLe:
        return child(0).isFloat() && child(1).isFloat() ? Type::i1()
                                                        : Type::bottom();

      case Op::Load:
        return child(0).isInt() && child(1).isInt()
                   ? Type::scalar(static_cast<ScalarKind>(payload.a))
                   : Type::bottom();
      case Op::Store:
        // Stores yield an i32 zero "effect token" (not Type::effect()) so
        // that region outputs can carry side effects through Loop/If with
        // ordinary tuple typing; the frontend initializes the carried slot
        // with a zero literal.
        return child(0).isInt() && child(1).isInt() && child(2).isScalar()
                   ? Type::i32()
                   : Type::bottom();

      case Op::Select:
        if (!child(0).isInt()) {
            return Type::bottom();
        }
        return child(1) == child(2) ? child(1) : Type::bottom();
      case Op::Mad:
        return joinInt(joinInt(child(0), child(1)), child(2));
      case Op::Fma:
        return joinFloat(joinFloat(child(0), child(1)), child(2));

      case Op::If: {
        Type in = child(0);
        if (!in.isTuple() || in.tupleElems().empty() ||
            !in.tupleElems()[0].isInt()) {
            return Type::bottom();
        }
        if (child(1) != child(2)) {
            return Type::bottom();
        }
        return child(1);
      }
      case Op::Loop: {
        Type in = child(0);
        Type body = child(1);
        if (!in.isTuple() || !body.isTuple()) {
            return Type::bottom();
        }
        const auto& carried = in.tupleElems();
        const auto& produced = body.tupleElems();
        if (produced.size() != carried.size() + 1 ||
            !produced[0].isInt()) {
            return Type::bottom();
        }
        for (size_t i = 0; i < carried.size(); ++i) {
            if (produced[i + 1] != carried[i]) {
                return Type::bottom();
            }
        }
        return in;
      }
      case Op::List:
        return Type::tuple(childTypes);
      case Op::Get: {
        Type agg = child(0);
        int64_t index = payload.a;
        if (agg.isTuple()) {
            const auto& elems = agg.tupleElems();
            if (index < 0 ||
                static_cast<size_t>(index) >= elems.size()) {
                return Type::bottom();
            }
            return elems[static_cast<size_t>(index)];
        }
        if (agg.isVector()) {
            if (index < 0 || index >= agg.lanes()) {
                return Type::bottom();
            }
            return Type::scalar(agg.scalarKind());
        }
        return Type::bottom();
      }

      case Op::Vec: {
        if (childTypes.size() < 2) {
            return Type::bottom();
        }
        Type first = child(0);
        if (!first.isScalar()) {
            return Type::bottom();
        }
        for (const auto& t : childTypes) {
            if (t != first) {
                return Type::bottom();
            }
        }
        return Type::vector(first.scalarKind(),
                            static_cast<int>(childTypes.size()));
      }
      case Op::VecOp: {
        if (childTypes.empty()) {
            return Type::bottom();
        }
        int lanes = 0;
        std::vector<Type> scalars;
        scalars.reserve(childTypes.size());
        for (const auto& t : childTypes) {
            if (!t.isVector()) {
                return Type::bottom();
            }
            if (lanes == 0) {
                lanes = t.lanes();
            } else if (lanes != t.lanes()) {
                return Type::bottom();
            }
            scalars.push_back(Type::scalar(t.scalarKind()));
        }
        Type elem = inferNodeType(static_cast<Op>(payload.a),
                                  Payload::none(), scalars);
        if (!elem.isScalar()) {
            return Type::bottom();
        }
        return Type::vector(elem.scalarKind(), lanes);
      }

      case Op::App:
        // The App result is the pattern's result type, which callers with a
        // registry resolve separately; structurally unknown here.
        return Type::bottom();

      case Op::kCount:
        break;
    }
    return Type::bottom();
}

Type
inferTermType(const TermPtr& term)
{
    std::vector<Type> childTypes;
    childTypes.reserve(term->children.size());
    for (const auto& child : term->children) {
        childTypes.push_back(inferTermType(child));
    }
    return inferNodeType(term->op, term->payload, childTypes);
}

}  // namespace isamore
