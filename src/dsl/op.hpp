/**
 * @file
 * Operator vocabulary of ISAMORE's structured DSL (paper Fig. 5).
 *
 * Every e-node constructor in the framework is one of these operators.  The
 * table below records, per operator: its printable name, its arity (-1 means
 * variadic), and classification flags used by ruleset construction
 * (int/float/vector) and by the hardware cost model.
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace isamore {

/**
 * X-macro operator table: OP(enumName, printName, arity, flags).
 *
 * Flags is a bitwise-or of OpFlag values (spelled without the kOp prefix
 * below for brevity).
 */
#define ISAMORE_OP_TABLE(OP)                                              \
    /* ---- leaves ---- */                                                \
    OP(Lit, "lit", 0, kLeaf)                                              \
    OP(Arg, "arg", 0, kLeaf)                                              \
    OP(Hole, "?", 0, kLeaf | kPattern)                                    \
    OP(PatRef, "pat", 0, kLeaf | kPattern)                                \
    /* ---- unary integer ---- */                                         \
    OP(Neg, "neg", 1, kInt)                                               \
    OP(Not, "not", 1, kInt)                                               \
    OP(Abs, "abs", 1, kInt)                                               \
    /* ---- unary float ---- */                                           \
    OP(FNeg, "fneg", 1, kFloat)                                           \
    OP(FAbs, "fabs", 1, kFloat)                                           \
    OP(FSqrt, "fsqrt", 1, kFloat)                                         \
    /* ---- conversions ---- */                                           \
    OP(IToF, "itof", 1, kInt | kFloat)                                    \
    OP(FToI, "ftoi", 1, kInt | kFloat)                                    \
    /* ---- binary integer ---- */                                        \
    OP(Add, "+", 2, kInt | kCommutative | kAssociative)                   \
    OP(Sub, "-", 2, kInt)                                                 \
    OP(Mul, "*", 2, kInt | kCommutative | kAssociative)                   \
    OP(Div, "/", 2, kInt)                                                 \
    OP(Rem, "%", 2, kInt)                                                 \
    OP(And, "&", 2, kInt | kCommutative | kAssociative)                   \
    OP(Or, "|", 2, kInt | kCommutative | kAssociative)                    \
    OP(Xor, "^", 2, kInt | kCommutative | kAssociative)                   \
    OP(Shl, "<<", 2, kInt)                                                \
    OP(Shr, ">>", 2, kInt)                                                \
    OP(AShr, ">>a", 2, kInt)                                              \
    OP(Min, "min", 2, kInt | kCommutative | kAssociative)                 \
    OP(Max, "max", 2, kInt | kCommutative | kAssociative)                 \
    /* ---- integer comparisons (yield i1) ---- */                        \
    OP(Eq, "==", 2, kInt | kCommutative | kCompare)                       \
    OP(Ne, "!=", 2, kInt | kCommutative | kCompare)                       \
    OP(Lt, "<", 2, kInt | kCompare)                                       \
    OP(Le, "<=", 2, kInt | kCompare)                                      \
    OP(Gt, ">", 2, kInt | kCompare)                                       \
    OP(Ge, ">=", 2, kInt | kCompare)                                      \
    /* ---- binary float ---- */                                          \
    OP(FAdd, "f+", 2, kFloat | kCommutative)                              \
    OP(FSub, "f-", 2, kFloat)                                             \
    OP(FMul, "f*", 2, kFloat | kCommutative)                              \
    OP(FDiv, "f/", 2, kFloat)                                             \
    OP(FMin, "fmin", 2, kFloat | kCommutative)                            \
    OP(FMax, "fmax", 2, kFloat | kCommutative)                            \
    OP(FEq, "f==", 2, kFloat | kCompare | kCommutative)                   \
    OP(FLt, "f<", 2, kFloat | kCompare)                                   \
    OP(FLe, "f<=", 2, kFloat | kCompare)                                  \
    /* ---- memory ---- */                                                \
    OP(Load, "load", 2, kMemory)                                          \
    OP(Store, "store", 3, kMemory | kEffect)                              \
    /* ---- ternary ---- */                                               \
    OP(Select, "select", 3, kInt)                                         \
    OP(Mad, "mad", 3, kInt)                                               \
    OP(Fma, "fma", 3, kFloat)                                             \
    /* ---- control ---- */                                               \
    OP(If, "if", 3, kControl)                                             \
    OP(Loop, "loop", 2, kControl)                                         \
    OP(List, "list", -1, kControl)                                        \
    OP(Get, "get", 1, kControl)                                           \
    /* ---- vectors ---- */                                               \
    OP(Vec, "vec", -1, kVector)                                           \
    OP(VecOp, "vop", -1, kVector)                                         \
    /* ---- pattern application ---- */                                   \
    OP(App, "app", -1, kPattern)

/** Classification flags for operators. */
enum OpFlag : uint32_t {
    kLeaf = 1u << 0,         ///< nullary; meaning carried in the payload
    kInt = 1u << 1,          ///< integer arithmetic/logic
    kFloat = 1u << 2,        ///< floating-point arithmetic
    kCommutative = 1u << 3,  ///< arguments may be swapped
    kAssociative = 1u << 4,  ///< regrouping is meaning-preserving
    kCompare = 1u << 5,      ///< yields an i1
    kMemory = 1u << 6,       ///< touches the memory system
    kEffect = 1u << 7,       ///< has a side effect (must be preserved)
    kControl = 1u << 8,      ///< structured control / aggregation
    kVector = 1u << 9,       ///< vector constructor or lane-parallel op
    kPattern = 1u << 10,     ///< pattern machinery (holes, App, PatRef)
};

/** The DSL operator set. */
enum class Op : uint16_t {
#define ISAMORE_OP_ENUM(name, str, arity, flags) name,
    ISAMORE_OP_TABLE(ISAMORE_OP_ENUM)
#undef ISAMORE_OP_ENUM
        kCount
};

/** Number of operators. */
inline constexpr size_t kNumOps = static_cast<size_t>(Op::kCount);

/** Static metadata for one operator. */
struct OpInfo {
    std::string_view name;  ///< printable s-expression head
    int arity;              ///< fixed arity, or -1 for variadic
    uint32_t flags;         ///< bitwise-or of OpFlag
};

/** Metadata for @p op. */
const OpInfo& opInfo(Op op);

/** Printable name of @p op. */
inline std::string_view opName(Op op) { return opInfo(op).name; }

/** Fixed arity of @p op, or -1 when variadic (List, Vec, VecOp, App). */
inline int opArity(Op op) { return opInfo(op).arity; }

/** Whether @p op carries flag @p flag. */
inline bool
opHasFlag(Op op, OpFlag flag)
{
    return (opInfo(op).flags & flag) != 0;
}

/** Look an operator up by its printable name; Op::kCount when unknown. */
Op opFromName(std::string_view name);

}  // namespace isamore
