/**
 * @file
 * Immutable DSL terms.
 *
 * A Term is a node of an immutable tree: an operator, its payload, and
 * child terms.  Terms double as *patterns* when they contain Hole nodes
 * (paper: pattern variables ?x).  All terms are shared via TermPtr.
 *
 * makeTerm() canonicalizes every node through the global hash-consing
 * interner (dsl/intern.hpp): structurally equal terms built anywhere in
 * the process are the *same* node, so termEquals() is a pointer compare
 * and termHash() a field load.  The 64-bit structural hash is computed
 * once at construction from the children's cached hashes and stored on
 * the node (see DESIGN.md "Term representation").
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsl/op.hpp"
#include "dsl/payload.hpp"
#include "dsl/type.hpp"

namespace isamore {

struct Term;

/** Shared handle to an immutable term. */
using TermPtr = std::shared_ptr<const Term>;

/** One immutable DSL term node. */
struct Term {
    Op op;
    Payload payload;
    std::vector<TermPtr> children;
    uint64_t hash;      ///< structural hash, fixed at construction
    bool interned;      ///< canonical node owned by the global interner
    bool hasHole;       ///< any Hole in this subtree

    Term(Op op_, Payload payload_, std::vector<TermPtr> children_,
         uint64_t hash_, bool interned_, bool hasHole_)
        : op(op_), payload(std::move(payload_)),
          children(std::move(children_)), hash(hash_),
          interned(interned_), hasHole(hasHole_)
    {}
};

/** @name Term factories
 *  @{ */

/** Generic constructor; validates arity for fixed-arity operators. */
TermPtr makeTerm(Op op, Payload payload, std::vector<TermPtr> children);

/** Fixed-arity convenience overload with no payload. */
TermPtr makeTerm(Op op, std::vector<TermPtr> children);

/** Integer literal. */
TermPtr lit(int64_t value);
/** Float literal. */
TermPtr litF(double value);
/**
 * Region argument (de Bruijn style): element @p index of the region frame
 * @p depth levels up the region stack (0 = innermost If/Loop body; the
 * function's parameter frame is outermost).  The value's scalar kind is
 * carried in the payload so types are intrinsic to the term; this overload
 * defaults to i32.
 */
TermPtr arg(int64_t depth, int64_t index);

/** Region argument with an explicit scalar kind. */
TermPtr argT(int64_t depth, int64_t index, ScalarKind kind);

/** @name Arg payload accessors
 *  @{ */
inline int64_t argDepth(const Payload& p) { return p.a; }
inline int64_t argIndex(const Payload& p) { return p.b & 0xffffffff; }
inline ScalarKind
argKind(const Payload& p)
{
    return static_cast<ScalarKind>(p.b >> 32);
}
/** @} */
/** Pattern variable (hole) with identifier @p holeId. */
TermPtr hole(int64_t holeId);
/** Reference to registered pattern @p patternId (used under App). */
TermPtr patRef(int64_t patternId);
/** Tuple element access. */
TermPtr get(TermPtr aggregate, int64_t index);
/** Memory load of a value of @p kind at (base, offset). */
TermPtr load(ScalarKind kind, TermPtr base, TermPtr offset);
/** Lane-parallel application of scalar @p op to vector operands. */
TermPtr vecOp(Op scalarOp, std::vector<TermPtr> operands);
/** Pattern application App(patRef, args...). */
TermPtr app(int64_t patternId, std::vector<TermPtr> args);

/** @} */

/** Number of nodes in the term tree. */
size_t termSize(const TermPtr& term);

/** Number of non-leaf operation nodes (excludes Lit/Arg/Hole/PatRef). */
size_t termOpCount(const TermPtr& term);

/**
 * Number of *distinct* non-leaf operation subterms.  Approximates the
 * dynamic instruction count of executing the term on a CPU with CSE:
 * structurally identical subtrees execute once.
 */
size_t termOpCountUnique(const TermPtr& term);

/**
 * Structural equality (payloads compared exactly).  O(1) for interned
 * terms (pointer identity); falls back to a hash-pruned recursive walk
 * only when an uninterned (legacy/frontend) node is involved.
 */
bool termEquals(const TermPtr& a, const TermPtr& b);

/** Structural hash consistent with termEquals (a field load). */
uint64_t termHash(const TermPtr& term);

/** Collect hole ids in first-occurrence (left-to-right) order, deduped. */
std::vector<int64_t> termHoles(const TermPtr& term);

/**
 * Rename holes to 0..n-1 in first-occurrence order, producing a canonical
 * pattern so that (?a + ?b) and (?x + ?y) compare equal.
 */
TermPtr canonicalizeHoles(const TermPtr& term);

/** Substitute each hole id via @p mapping (ids absent stay as holes). */
TermPtr substituteHoles(
    const TermPtr& term,
    const std::function<TermPtr(int64_t holeId)>& mapping);

/** Render as an s-expression, e.g. "(* (+ ?0 ?1) 2)". */
std::string termToString(const TermPtr& term);

/**
 * Parse an s-expression term.
 *
 * Grammar: integers ("42"), floats ("4.2f"), holes ("?3"), args
 * ("$f.i" = Arg(f, i)), and "(head child...)" where head is an operator
 * name from the Op table.  Get takes its index as a first bare integer:
 * "(get 1 x)"; Load takes its scalar kind: "(load i32 base off)";
 * VecOp takes its scalar op name: "(vop + a b)".
 *
 * @throws UserError on malformed input.
 */
TermPtr parseTerm(const std::string& text);

}  // namespace isamore
