#include "dsl/intern.hpp"

#include <mutex>
#include <unordered_map>

#include "support/check.hpp"
#include "support/hashing.hpp"

namespace isamore {
namespace {

/**
 * Node hash from the children's cached hashes: identical, term for term,
 * to the recursive formula the pre-interner termHash() used, so hashes
 * are stable across the interning change and across runs (no pointer
 * ever feeds the hash).
 */
uint64_t
nodeHash(Op op, const Payload& payload,
         const std::vector<TermPtr>& children)
{
    uint64_t h = mix64(static_cast<uint64_t>(op));
    h = hashCombine(h, payload.hash());
    for (const auto& child : children) {
        h = hashCombine(h, child->hash);
    }
    return h;
}

bool
nodeHasHole(Op op, const std::vector<TermPtr>& children)
{
    if (op == Op::Hole) {
        return true;
    }
    for (const auto& child : children) {
        if (child->hasHole) {
            return true;
        }
    }
    return false;
}

/** Shallow identity: children compared by pointer (they are canonical). */
bool
shallowEquals(const Term& node, Op op, const Payload& payload,
              const std::vector<TermPtr>& children)
{
    if (node.op != op || node.payload != payload ||
        node.children.size() != children.size()) {
        return false;
    }
    for (size_t i = 0; i < children.size(); ++i) {
        if (node.children[i].get() != children[i].get()) {
            return false;
        }
    }
    return true;
}

class Interner {
 public:
    static constexpr size_t kShards = 64;

    static Interner&
    instance()
    {
        // Leaked singleton: terms may outlive every static destructor
        // (tests, atexit handlers), so the table is never torn down.
        static Interner* interner = new Interner();
        return *interner;
    }

    TermPtr
    intern(Op op, Payload payload, std::vector<TermPtr> children,
           uint64_t hash, bool hasHole)
    {
        Shard& shard = shards_[shardOf(hash)];
        std::lock_guard<std::mutex> lock(shard.mu);
        auto bucket = shard.buckets.find(hash);
        if (bucket != shard.buckets.end()) {
            for (const TermPtr& candidate : bucket->second) {
                if (shallowEquals(*candidate, op, payload, children)) {
                    ++shard.hits;
                    return candidate;
                }
            }
        }
        ++shard.misses;
        TermPtr node = std::make_shared<Term>(
            op, std::move(payload), std::move(children), hash,
            /*interned=*/true, hasHole);
        shard.buckets[hash].push_back(node);
        return node;
    }

    InternStats
    stats() const
    {
        InternStats out;
        out.shards = kShards;
        for (const Shard& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            for (const auto& [hash, chain] : shard.buckets) {
                out.terms += chain.size();
            }
            out.hits += shard.hits;
            out.misses += shard.misses;
        }
        return out;
    }

    void
    resetCounters()
    {
        for (Shard& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.hits = 0;
            shard.misses = 0;
        }
    }

    size_t
    purge()
    {
        size_t dropped = 0;
        bool changed = true;
        // A parent holds references to its children, so dropping it can
        // make them purgeable: sweep to a fixpoint.
        while (changed) {
            changed = false;
            for (Shard& shard : shards_) {
                std::lock_guard<std::mutex> lock(shard.mu);
                for (auto it = shard.buckets.begin();
                     it != shard.buckets.end();) {
                    auto& chain = it->second;
                    for (size_t i = 0; i < chain.size();) {
                        if (chain[i].use_count() == 1) {
                            chain.erase(chain.begin() + i);
                            ++dropped;
                            changed = true;
                        } else {
                            ++i;
                        }
                    }
                    it = chain.empty() ? shard.buckets.erase(it)
                                       : std::next(it);
                }
            }
        }
        return dropped;
    }

 private:
    struct Shard {
        mutable std::mutex mu;
        /** Full-hash buckets; chains are ~1 deep (64-bit collisions). */
        std::unordered_map<uint64_t, std::vector<TermPtr>> buckets;
        uint64_t hits = 0;
        uint64_t misses = 0;
    };

    /** Top bits pick the stripe; unordered_map consumes the low bits. */
    static size_t shardOf(uint64_t hash) { return hash >> 58; }

    Shard shards_[kShards];
};

}  // namespace

namespace detail {

/** The makeTerm() back end: canonicalize children, then intern. */
TermPtr
internNode(Op op, Payload payload, std::vector<TermPtr> children)
{
    for (TermPtr& child : children) {
        if (!child->interned) {
            child = internTerm(child);
        }
    }
    const uint64_t hash = nodeHash(op, payload, children);
    const bool hasHole = nodeHasHole(op, children);
    return Interner::instance().intern(op, std::move(payload),
                                       std::move(children), hash, hasHole);
}

}  // namespace detail

InternStats
internStats()
{
    return Interner::instance().stats();
}

size_t
internPurge()
{
    return Interner::instance().purge();
}

void
internResetCounters()
{
    Interner::instance().resetCounters();
}

TermPtr
internTerm(const TermPtr& term)
{
    ISAMORE_CHECK_MSG(term != nullptr, "internTerm on null term");
    if (term->interned) {
        return term;
    }
    std::vector<TermPtr> children;
    children.reserve(term->children.size());
    for (const auto& child : term->children) {
        children.push_back(internTerm(child));
    }
    return detail::internNode(term->op, term->payload,
                              std::move(children));
}

TermPtr
makeTermUninterned(Op op, Payload payload, std::vector<TermPtr> children)
{
    const int arity = opArity(op);
    if (arity >= 0) {
        ISAMORE_USER_CHECK(children.size() == static_cast<size_t>(arity),
                           std::string("arity mismatch for op ") +
                               std::string(opName(op)));
    }
    for (const auto& child : children) {
        ISAMORE_USER_CHECK(child != nullptr, "null child term");
    }
    const uint64_t hash = nodeHash(op, payload, children);
    const bool hasHole = nodeHasHole(op, children);
    return std::make_shared<Term>(op, std::move(payload),
                                  std::move(children), hash,
                                  /*interned=*/false, hasHole);
}

namespace {

TermPtr
copyTopologyRec(const TermPtr& term,
                std::unordered_map<const Term*, TermPtr>& copied)
{
    auto it = copied.find(term.get());
    if (it != copied.end()) {
        return it->second;
    }
    std::vector<TermPtr> children;
    children.reserve(term->children.size());
    for (const auto& child : term->children) {
        children.push_back(copyTopologyRec(child, copied));
    }
    TermPtr copy = makeTermUninterned(term->op, term->payload,
                                      std::move(children));
    copied.emplace(term.get(), copy);
    return copy;
}

}  // namespace

TermPtr
copyTopologyUninterned(const TermPtr& term)
{
    std::unordered_map<const Term*, TermPtr> copied;
    return copyTopologyRec(term, copied);
}

namespace {

TermPtr
renameHolesUninterned(const TermPtr& term,
                      const std::unordered_map<int64_t, int64_t>& renaming)
{
    if (term->op == Op::Hole) {
        return makeTermUninterned(
            Op::Hole, Payload::ofInt(renaming.at(term->payload.a)), {});
    }
    if (!term->hasHole) {
        return term;
    }
    std::vector<TermPtr> children;
    children.reserve(term->children.size());
    for (const auto& child : term->children) {
        children.push_back(renameHolesUninterned(child, renaming));
    }
    return makeTermUninterned(term->op, term->payload,
                              std::move(children));
}

}  // namespace

TermPtr
canonicalizeHolesUninterned(const TermPtr& term)
{
    const auto order = termHoles(term);
    if (order.empty()) {
        return term;
    }
    std::unordered_map<int64_t, int64_t> renaming;
    renaming.reserve(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
        renaming.emplace(order[i], static_cast<int64_t>(i));
    }
    return renameHolesUninterned(term, renaming);
}

uint64_t
termHashDeep(const TermPtr& term)
{
    uint64_t h = mix64(static_cast<uint64_t>(term->op));
    h = hashCombine(h, term->payload.hash());
    for (const auto& child : term->children) {
        h = hashCombine(h, termHashDeep(child));
    }
    return h;
}

bool
termEqualsDeep(const TermPtr& a, const TermPtr& b)
{
    if (a.get() == b.get()) {
        return true;
    }
    if (a->op != b->op || a->payload != b->payload ||
        a->children.size() != b->children.size()) {
        return false;
    }
    for (size_t i = 0; i < a->children.size(); ++i) {
        if (!termEqualsDeep(a->children[i], b->children[i])) {
            return false;
        }
    }
    return true;
}

}  // namespace isamore
