#include "dsl/eval.hpp"

#include <cmath>
#include <cstring>
#include <unordered_map>

namespace isamore {

bool
Value::operator==(const Value& other) const
{
    if (kind != other.kind) {
        return false;
    }
    switch (kind) {
      case Kind::Int:
        return i == other.i;
      case Kind::Float: {
        // Compare by bit pattern so NaN == NaN for equivalence checking.
        uint64_t a = 0;
        uint64_t b = 0;
        std::memcpy(&a, &f, sizeof(a));
        std::memcpy(&b, &other.f, sizeof(b));
        return a == b;
      }
      case Kind::Vec:
      case Kind::Tuple:
        return elems == other.elems;
      case Kind::Effect:
        return true;
    }
    return false;
}

namespace {

/**
 * Region-stack evaluator.
 *
 * Shared term nodes are memoized per (term, region context): a DAG node
 * referenced from several parents evaluates exactly once per execution of
 * its region, matching SSA semantics (one instruction, one value, side
 * effects once).  The context id changes on every region-frame push and on
 * App entry (holes rebind there) and reverts on exit.
 */
class Evaluator {
 public:
    explicit Evaluator(EvalContext& ctx) : ctx_(ctx)
    {
        frames_.push_back(&ctx.functionArgs);
        contexts_.push_back(nextContext_++);
    }

    Value
    eval(const TermPtr& term)
    {
        if (term->children.empty()) {
            return evalUncached(term);
        }
        const MemoKey key{term.get(), contexts_.back()};
        auto it = memo_.find(key);
        if (it != memo_.end()) {
            return it->second;
        }
        Value v = evalUncached(term);
        memo_.emplace(key, v);
        return v;
    }

    Value
    evalUncached(const TermPtr& term)
    {
        switch (term->op) {
          case Op::Lit:
            if (term->payload.kind == Payload::Kind::Float) {
                return Value::ofFloat(term->payload.f);
            }
            return Value::ofInt(term->payload.a);
          case Op::Arg:
            return evalArg(argDepth(term->payload),
                           argIndex(term->payload));
          case Op::Hole:
            if (!ctx_.holeValue) {
                throw EvalError("unbound hole in evaluation");
            }
            return ctx_.holeValue(term->payload.a);
          case Op::PatRef:
            throw EvalError("PatRef evaluated outside App");
          case Op::If:
            return evalIf(term);
          case Op::Loop:
            return evalLoop(term);
          case Op::List:
            return evalList(term);
          case Op::Get:
            return evalGet(term);
          case Op::Vec:
            return evalVec(term);
          case Op::VecOp:
            return evalVecOp(term);
          case Op::App:
            return evalApp(term);
          case Op::Load:
            return evalLoad(term);
          case Op::Store:
            return evalStore(term);
          default:
            break;
        }
        // Scalar arithmetic / logic / comparison / select.
        std::vector<Value> args;
        args.reserve(term->children.size());
        for (const auto& child : term->children) {
            args.push_back(eval(child));
        }
        return applyScalar(term->op, args);
    }

    /** Apply a scalar operator to already-evaluated operands. */
    static Value
    applyScalar(Op op, const std::vector<Value>& a)
    {
        auto iv = [&](size_t k) -> int64_t {
            if (a[k].kind != Value::Kind::Int) {
                throw EvalError("expected int operand");
            }
            return a[k].i;
        };
        auto fv = [&](size_t k) -> double {
            if (a[k].kind != Value::Kind::Float) {
                throw EvalError("expected float operand");
            }
            return a[k].f;
        };
        auto I = Value::ofInt;
        auto F = Value::ofFloat;

        switch (op) {
          case Op::Neg:
            // Two's-complement wrapping (negating INT64_MIN is UB in
            // plain signed arithmetic).
            return I(wrapSub(0, iv(0)));
          case Op::Not:
            return I(~iv(0));
          case Op::Abs:
            return I(iv(0) < 0 ? wrapSub(0, iv(0)) : iv(0));
          case Op::FNeg:
            return F(-fv(0));
          case Op::FAbs:
            return F(std::fabs(fv(0)));
          case Op::FSqrt:
            return F(std::sqrt(fv(0)));
          case Op::IToF:
            return F(static_cast<double>(iv(0)));
          case Op::FToI:
            return I(static_cast<int64_t>(fv(0)));
          case Op::Add:
            return I(wrapAdd(iv(0), iv(1)));
          case Op::Sub:
            return I(wrapSub(iv(0), iv(1)));
          case Op::Mul:
            return I(wrapMul(iv(0), iv(1)));
          case Op::Div:
            return I(iv(1) == 0 ? 0 : safeDiv(iv(0), iv(1)));
          case Op::Rem:
            return I(iv(1) == 0 ? 0 : safeRem(iv(0), iv(1)));
          case Op::And:
            return I(iv(0) & iv(1));
          case Op::Or:
            return I(iv(0) | iv(1));
          case Op::Xor:
            return I(iv(0) ^ iv(1));
          case Op::Shl:
            return I(static_cast<int64_t>(static_cast<uint64_t>(iv(0))
                                          << (iv(1) & 63)));
          case Op::Shr:
            return I(static_cast<int64_t>(static_cast<uint64_t>(iv(0)) >>
                                          (iv(1) & 63)));
          case Op::AShr:
            return I(iv(0) >> (iv(1) & 63));
          case Op::Min:
            return I(std::min(iv(0), iv(1)));
          case Op::Max:
            return I(std::max(iv(0), iv(1)));
          case Op::Eq:
            return I(iv(0) == iv(1) ? 1 : 0);
          case Op::Ne:
            return I(iv(0) != iv(1) ? 1 : 0);
          case Op::Lt:
            return I(iv(0) < iv(1) ? 1 : 0);
          case Op::Le:
            return I(iv(0) <= iv(1) ? 1 : 0);
          case Op::Gt:
            return I(iv(0) > iv(1) ? 1 : 0);
          case Op::Ge:
            return I(iv(0) >= iv(1) ? 1 : 0);
          case Op::FAdd:
            return F(fv(0) + fv(1));
          case Op::FSub:
            return F(fv(0) - fv(1));
          case Op::FMul:
            return F(fv(0) * fv(1));
          case Op::FDiv:
            return F(fv(0) / fv(1));
          case Op::FMin:
            return F(std::fmin(fv(0), fv(1)));
          case Op::FMax:
            return F(std::fmax(fv(0), fv(1)));
          case Op::FEq:
            return I(fv(0) == fv(1) ? 1 : 0);
          case Op::FLt:
            return I(fv(0) < fv(1) ? 1 : 0);
          case Op::FLe:
            return I(fv(0) <= fv(1) ? 1 : 0);
          case Op::Select:
            return iv(0) != 0 ? a[1] : a[2];
          case Op::Mad:
            return I(wrapAdd(wrapMul(iv(0), iv(1)), iv(2)));
          case Op::Fma:
            return F(fv(0) * fv(1) + fv(2));
          default:
            throw EvalError(std::string("unhandled scalar op: ") +
                            std::string(opName(op)));
        }
    }

 private:
    static int64_t
    wrapAdd(int64_t x, int64_t y)
    {
        return static_cast<int64_t>(static_cast<uint64_t>(x) +
                                    static_cast<uint64_t>(y));
    }

    static int64_t
    wrapSub(int64_t x, int64_t y)
    {
        return static_cast<int64_t>(static_cast<uint64_t>(x) -
                                    static_cast<uint64_t>(y));
    }

    static int64_t
    wrapMul(int64_t x, int64_t y)
    {
        return static_cast<int64_t>(static_cast<uint64_t>(x) *
                                    static_cast<uint64_t>(y));
    }

    static int64_t
    safeDiv(int64_t x, int64_t y)
    {
        if (x == INT64_MIN && y == -1) {
            return INT64_MIN;  // wraps
        }
        return x / y;
    }

    static int64_t
    safeRem(int64_t x, int64_t y)
    {
        if (x == INT64_MIN && y == -1) {
            return 0;
        }
        return x % y;
    }

    Value
    evalArg(int64_t depth, int64_t index)
    {
        if (depth < 0 ||
            static_cast<size_t>(depth) >= frames_.size()) {
            throw EvalError("Arg depth out of range");
        }
        const auto& frame = *frames_[frames_.size() - 1 -
                                     static_cast<size_t>(depth)];
        if (index < 0 || static_cast<size_t>(index) >= frame.size()) {
            throw EvalError("Arg index out of range");
        }
        return frame[static_cast<size_t>(index)];
    }

    Value
    evalIf(const TermPtr& term)
    {
        Value input = eval(term->children[0]);
        if (input.kind != Value::Kind::Tuple || input.elems.empty()) {
            throw EvalError("If input must be a (cond, args...) tuple");
        }
        bool take_then = input.elems[0].kind == Value::Kind::Int
                             ? input.elems[0].i != 0
                             : input.elems[0].f != 0.0;
        std::vector<Value> frame(input.elems.begin() + 1, input.elems.end());
        pushFrame(&frame);
        Value result = eval(term->children[take_then ? 1 : 2]);
        popFrame();
        return result;
    }

    Value
    evalLoop(const TermPtr& term)
    {
        Value init = eval(term->children[0]);
        if (init.kind != Value::Kind::Tuple) {
            throw EvalError("Loop init must be a tuple");
        }
        std::vector<Value> carried = init.elems;
        uint64_t iterations = 0;
        while (true) {
            if (++iterations > ctx_.maxLoopIterations) {
                throw EvalError("Loop iteration bound exceeded");
            }
            pushFrame(&carried);
            Value out = eval(term->children[1]);
            popFrame();
            if (out.kind != Value::Kind::Tuple || out.elems.empty() ||
                out.elems.size() != carried.size() + 1) {
                throw EvalError(
                    "Loop body must yield (continue, carried...)");
            }
            bool go_on = out.elems[0].kind == Value::Kind::Int
                             ? out.elems[0].i != 0
                             : out.elems[0].f != 0.0;
            carried.assign(out.elems.begin() + 1, out.elems.end());
            if (!go_on) {
                break;
            }
        }
        return Value::tuple(std::move(carried));
    }

    Value
    evalList(const TermPtr& term)
    {
        std::vector<Value> elems;
        elems.reserve(term->children.size());
        for (const auto& child : term->children) {
            elems.push_back(eval(child));
        }
        return Value::tuple(std::move(elems));
    }

    Value
    evalGet(const TermPtr& term)
    {
        Value agg = eval(term->children[0]);
        if (agg.kind != Value::Kind::Tuple && agg.kind != Value::Kind::Vec) {
            throw EvalError("Get requires a tuple or vector");
        }
        int64_t index = term->payload.a;
        if (index < 0 || static_cast<size_t>(index) >= agg.elems.size()) {
            throw EvalError("Get index out of range");
        }
        return agg.elems[static_cast<size_t>(index)];
    }

    Value
    evalVec(const TermPtr& term)
    {
        std::vector<Value> lanes;
        lanes.reserve(term->children.size());
        for (const auto& child : term->children) {
            lanes.push_back(eval(child));
        }
        return Value::vec(std::move(lanes));
    }

    Value
    evalVecOp(const TermPtr& term)
    {
        const Op scalar_op = static_cast<Op>(term->payload.a);
        std::vector<Value> operands;
        operands.reserve(term->children.size());
        for (const auto& child : term->children) {
            operands.push_back(eval(child));
        }
        size_t lanes = 0;
        for (const auto& v : operands) {
            if (v.kind != Value::Kind::Vec) {
                throw EvalError("VecOp operand must be a vector");
            }
            if (lanes == 0) {
                lanes = v.elems.size();
            } else if (lanes != v.elems.size()) {
                throw EvalError("VecOp lane count mismatch");
            }
        }
        std::vector<Value> result;
        result.reserve(lanes);
        for (size_t lane = 0; lane < lanes; ++lane) {
            std::vector<Value> scalars;
            scalars.reserve(operands.size());
            for (const auto& v : operands) {
                scalars.push_back(v.elems[lane]);
            }
            result.push_back(applyScalar(scalar_op, scalars));
        }
        return Value::vec(std::move(result));
    }

    Value
    evalApp(const TermPtr& term)
    {
        if (term->children.empty() ||
            term->children[0]->op != Op::PatRef) {
            throw EvalError("App requires a leading PatRef");
        }
        if (!ctx_.patternBody) {
            throw EvalError("App evaluated without a pattern registry");
        }
        TermPtr body = ctx_.patternBody(term->children[0]->payload.a);
        if (body == nullptr) {
            throw EvalError("unknown pattern id in App");
        }
        std::vector<Value> args;
        args.reserve(term->children.size() - 1);
        for (size_t i = 1; i < term->children.size(); ++i) {
            args.push_back(eval(term->children[i]));
        }
        const auto holes = termHoles(body);
        if (holes.size() != args.size()) {
            throw EvalError("App argument count does not match pattern");
        }
        // Evaluate the body with holes bound positionally.
        auto saved = ctx_.holeValue;
        // Holes rebind inside the App body: give it a fresh memo context.
        contexts_.push_back(nextContext_++);
        ctx_.holeValue = [&](int64_t holeId) -> Value {
            for (size_t i = 0; i < holes.size(); ++i) {
                if (holes[i] == holeId) {
                    return args[i];
                }
            }
            throw EvalError("hole not bound by App");
        };
        Value result = eval(body);
        contexts_.pop_back();
        ctx_.holeValue = saved;
        return result;
    }

    Value
    evalLoad(const TermPtr& term)
    {
        Value base = eval(term->children[0]);
        Value offset = eval(term->children[1]);
        uint64_t addr = address(base, offset);
        const auto kind = static_cast<ScalarKind>(term->payload.a);
        uint64_t bits = ctx_.memory[addr];
        if (scalarIsFloat(kind)) {
            double d = 0;
            std::memcpy(&d, &bits, sizeof(d));
            return Value::ofFloat(d);
        }
        return Value::ofInt(static_cast<int64_t>(bits));
    }

    Value
    evalStore(const TermPtr& term)
    {
        Value base = eval(term->children[0]);
        Value offset = eval(term->children[1]);
        Value value = eval(term->children[2]);
        uint64_t addr = address(base, offset);
        if (value.kind == Value::Kind::Float) {
            uint64_t bits = 0;
            std::memcpy(&bits, &value.f, sizeof(bits));
            ctx_.memory[addr] = bits;
        } else if (value.kind == Value::Kind::Int) {
            ctx_.memory[addr] = static_cast<uint64_t>(value.i);
        } else {
            throw EvalError("Store value must be scalar");
        }
        // Stores yield an i32 zero token (see type_infer.cpp).
        return Value::ofInt(0);
    }

    uint64_t
    address(const Value& base, const Value& offset)
    {
        if (base.kind != Value::Kind::Int ||
            offset.kind != Value::Kind::Int) {
            throw EvalError("memory address operands must be ints");
        }
        int64_t addr = base.i + offset.i;
        if (addr < 0 ||
            static_cast<size_t>(addr) >= ctx_.memory.size()) {
            throw EvalError("memory address out of range");
        }
        return static_cast<uint64_t>(addr);
    }

    struct MemoKey {
        const Term* term;
        uint64_t context;
        bool
        operator==(const MemoKey& other) const
        {
            return term == other.term && context == other.context;
        }
    };
    struct MemoKeyHash {
        size_t
        operator()(const MemoKey& k) const
        {
            return std::hash<const Term*>{}(k.term) ^
                   (static_cast<size_t>(k.context) * 0x9e3779b97f4a7c15ull);
        }
    };

    void
    pushFrame(std::vector<Value>* frame)
    {
        frames_.push_back(frame);
        contexts_.push_back(nextContext_++);
    }

    void
    popFrame()
    {
        frames_.pop_back();
        contexts_.pop_back();
    }

    EvalContext& ctx_;
    std::vector<std::vector<Value>*> frames_;
    std::vector<uint64_t> contexts_;
    uint64_t nextContext_ = 0;
    std::unordered_map<MemoKey, Value, MemoKeyHash> memo_;
};

}  // namespace

Value
evaluate(const TermPtr& term, EvalContext& ctx)
{
    return Evaluator(ctx).eval(term);
}

}  // namespace isamore
