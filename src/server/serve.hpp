/**
 * @file
 * The analysis daemon's serving loop: threads, queue, watchdog, purge.
 *
 * Topology (see DESIGN.md "Server mode & overload taxonomy"):
 *
 *     stdin --> reader (caller thread)
 *                 |  parse; bad lines answered immediately
 *                 v
 *           BoundedQueue  -- full? answer "overloaded" immediately
 *                 |
 *           session lanes (N worker threads)
 *                 |  per-request root Budget + watchdog registration
 *                 |  shared/exclusive isolation lock (fault scopes, purge)
 *                 v
 *     stdout <-- one JSON line per response (mutex-serialized)
 *
 * A watchdog thread polls the in-flight table and cancel()s any root
 * budget past its deadline, so a request that stops polling its own
 * deadline still gets reeled in.  Every `purgeEvery` analyze responses,
 * a lane takes the exclusive lock and runs internPurge() + a telemetry
 * sweep so a long-lived daemon's intern table stays bounded.
 *
 * Stdout hygiene: the ONLY bytes this loop ever writes to @p out are
 * complete JSON response lines.  Banners, purge notices, and shutdown
 * summaries all go to @p err, so `isamore_serve | jq` never chokes.
 */
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "server/observe.hpp"

namespace isamore {
namespace server {

/** Tunables of one serve loop run. */
struct ServeOptions {
    /** Session lanes (worker threads) draining the queue. */
    size_t lanes = 2;
    /** Bounded request-queue capacity (rounded up to a power of two). */
    size_t queueCapacity = 64;
    /** Run an intern purge sweep every this many analyze responses. */
    size_t purgeEvery = 64;
    /** Watchdog poll period in milliseconds. */
    size_t watchdogPollMs = 5;
    /** Print a startup banner and shutdown summary to the error stream. */
    bool banner = true;
    /**
     * Persistent corpus shared by every lane (empty = no corpus).
     * Loaded before the lanes start (a corrupt file refuses startup,
     * exit 3; a missing file starts empty unless read-only) and saved
     * back -- atomic rename -- at every purge-sweep checkpoint and at
     * shutdown, when dirty.  Corpus-held patterns pin their interned
     * nodes across internPurge() by holding strong references.
     */
    std::string corpusPath;
    /** Consult the corpus but never write the file back (and make a
     *  missing file a startup error). */
    bool corpusReadonly = false;
    /**
     * Live observability (DESIGN.md "Live observability").  The serving
     * loop always runs with telemetry enabled and per-request latency
     * digests + flight-recorder rings live (the enabled-overhead CI
     * gate keeps that below 2%); these options additionally turn on the
     * stderr event log and automatic flight dumps.  None of it touches
     * response `result` bytes -- goldens stay byte-identical.
     */
    ObserveOptions observe;
    /** Write a metrics snapshot (<metricsPath>.json + .prom, atomic
     *  rename) every this many milliseconds (0 = only at shutdown, and
     *  only when metricsPath is set). */
    size_t metricsIntervalMs = 0;
    /** Snapshot base path; defaults to "isamore_metrics" when an
     *  interval is set without a path. */
    std::string metricsPath;
};

/**
 * Serve JSON-lines requests from @p in to @p out until EOF, with notices
 * on @p err.  Blocks the calling thread (it becomes the reader).
 * @return the process exit code (0 on clean EOF shutdown).
 */
int serveLoop(std::istream& in, std::ostream& out, std::ostream& err,
              const ServeOptions& options);

}  // namespace server
}  // namespace isamore
