/**
 * @file
 * Vyukov-style bounded MPMC queue: the server's request channel.
 *
 * The classic design (Dmitry Vyukov's bounded MPMC queue, the same
 * algorithm xenium ships as `vyukov_bounded_queue`): a power-of-two ring
 * of cells, each carrying a sequence number.  A producer claims a cell by
 * CAS-advancing the enqueue cursor when the cell's sequence says "empty
 * for this lap", writes the value, then publishes by bumping the sequence;
 * consumers mirror the dance on the dequeue cursor.  Every operation is
 * lock-free (one CAS on the uncontended path), bounded (tryPush fails
 * when the ring is full -- that failure IS the server's backpressure
 * signal, surfaced to clients as `status:"overloaded"`), and FIFO per
 * producer.
 *
 * tryPush/tryPop never block, which keeps the reader loop responsive; the
 * blocking conveniences (waitPop) sleep on a condition variable that
 * producers only signal after a successful push, so an idle server parks
 * its session lanes instead of spinning.  The condvar is a wake-up hint
 * layered *beside* the lock-free ring, not a lock around it: a woken
 * consumer still claims its cell with the normal CAS protocol.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>

#include "support/check.hpp"

namespace isamore {
namespace server {

template <typename T>
class BoundedQueue {
 public:
    /** @p capacity is rounded up to a power of two (minimum 2). */
    explicit BoundedQueue(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity) {
            cap <<= 1;
        }
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (size_t i = 0; i < cap; ++i) {
            cells_[i].sequence.store(i, std::memory_order_relaxed);
        }
    }

    size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue @p value.  Returns false -- without blocking and without
     * touching @p value -- when the ring is full; the caller turns that
     * into an explicit overload response.
     */
    bool
    tryPush(T&& value)
    {
        Cell* cell;
        size_t pos = enqueue_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const size_t seq = cell->sequence.load(std::memory_order_acquire);
            const intptr_t diff = static_cast<intptr_t>(seq) -
                                  static_cast<intptr_t>(pos);
            if (diff == 0) {
                if (enqueue_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (diff < 0) {
                return false;  // full: the consumer lap hasn't freed it
            } else {
                pos = enqueue_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->sequence.store(pos + 1, std::memory_order_release);
        // Wake one parked consumer.  The lock is required for the
        // missed-wakeup race (consumer checked the ring, then parked).
        {
            std::lock_guard<std::mutex> lock(wakeMutex_);
        }
        wakeCv_.notify_one();
        return true;
    }

    /** Dequeue into @p out.  Returns false when the ring is empty. */
    bool
    tryPop(T& out)
    {
        Cell* cell;
        size_t pos = dequeue_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const size_t seq = cell->sequence.load(std::memory_order_acquire);
            const intptr_t diff = static_cast<intptr_t>(seq) -
                                  static_cast<intptr_t>(pos + 1);
            if (diff == 0) {
                if (dequeue_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (diff < 0) {
                return false;  // empty
            } else {
                pos = dequeue_.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue, parking on the wake condvar until an element arrives,
     * @p deadline passes, or interrupt() is called.  Returns false on
     * timeout/interrupt with the queue still empty.
     */
    bool
    waitPop(T& out, std::chrono::milliseconds patience)
    {
        if (tryPop(out)) {
            return true;
        }
        std::unique_lock<std::mutex> lock(wakeMutex_);
        const auto deadline = std::chrono::steady_clock::now() + patience;
        // The empty-check runs while holding the wake mutex and producers
        // notify under it, so a push between our failed tryPop and the
        // wait cannot be a lost wakeup: the producer blocks on the mutex
        // until we release it inside wait_until.
        while (!tryPop(out)) {
            if (interrupted_) {
                return false;
            }
            if (wakeCv_.wait_until(lock, deadline) ==
                std::cv_status::timeout) {
                return tryPop(out);
            }
        }
        return true;
    }

    /** Wake every parked consumer (shutdown path). */
    void
    interrupt()
    {
        {
            std::lock_guard<std::mutex> lock(wakeMutex_);
            interrupted_ = true;
        }
        wakeCv_.notify_all();
    }

    /** Lower the interrupt latch (tests reuse one queue across phases). */
    void
    clearInterrupt()
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        interrupted_ = false;
    }

    /** Approximate occupancy (exact only at quiescent points). */
    size_t
    size() const
    {
        const size_t enq = enqueue_.load(std::memory_order_relaxed);
        const size_t deq = dequeue_.load(std::memory_order_relaxed);
        return enq >= deq ? enq - deq : 0;
    }

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

 private:
    /** One ring slot; the sequence number encodes lap + occupancy. */
    struct alignas(64) Cell {
        std::atomic<size_t> sequence{0};
        T value{};
    };

    std::unique_ptr<Cell[]> cells_;
    size_t mask_ = 0;
    // Producer and consumer cursors on separate cache lines.
    alignas(64) std::atomic<size_t> enqueue_{0};
    alignas(64) std::atomic<size_t> dequeue_{0};

    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    bool interrupted_ = false;  // guarded by wakeMutex_
};

}  // namespace server
}  // namespace isamore
