#include "server/serve.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "dsl/intern.hpp"
#include "isamore/report.hpp"
#include "server/queue.hpp"
#include "server/session.hpp"
#include "support/budget.hpp"
#include "support/reclaim.hpp"
#include "support/telemetry.hpp"

namespace isamore {
namespace server {

namespace {

/**
 * The watchdog's view of running requests: root budgets keyed by request
 * sequence number, each with the wall-clock instant past which it must be
 * cancelled.  Budgets are registered only while the owning lane is inside
 * executeRequest, so the pointers never dangle.
 */
class InFlightTable {
 public:
    void
    add(uint64_t seq, Budget* budget,
        std::chrono::steady_clock::time_point deadline)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_[seq] = {budget, deadline};
    }

    void
    remove(uint64_t seq)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(seq);
    }

    /** Cancel every budget past its deadline; returns how many. */
    size_t
    reapOverdue(std::chrono::steady_clock::time_point now)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t reaped = 0;
        for (auto& [seq, entry] : entries_) {
            if (now >= entry.deadline && !entry.cancelled) {
                entry.budget->cancel();
                entry.cancelled = true;
                ++reaped;
            }
        }
        return reaped;
    }

 private:
    struct Entry {
        Budget* budget = nullptr;
        std::chrono::steady_clock::time_point deadline;
        bool cancelled = false;
    };
    std::mutex mutex_;
    std::map<uint64_t, Entry> entries_;
};

/** Everything the lanes, reader, and watchdog share. */
struct ServeContext {
    explicit ServeContext(const ServeOptions& opts)
        : options(opts), queue(opts.queueCapacity) {}

    const ServeOptions& options;
    SharedState state;
    BoundedQueue<Request> queue;
    InFlightTable inFlight;

    std::mutex outMutex;
    std::ostream* out = nullptr;
    std::ostream* err = nullptr;

    std::atomic<bool> stopping{false};
    std::atomic<uint64_t> analyzesSinceSweep{0};
    std::atomic<uint64_t> watchdogCancellations{0};

    /** Shared warm-start corpus (null = serving without one). */
    std::unique_ptr<corpus::Corpus> corpus;
};

/**
 * Checkpoint the corpus to disk if anything accumulated since the last
 * save.  Failures are notices, not crashes: the in-memory corpus stays
 * warm and the next checkpoint retries.
 */
void
saveCorpusCheckpoint(ServeContext& ctx, const char* when)
{
    if (ctx.corpus == nullptr || ctx.options.corpusReadonly ||
        !ctx.corpus->dirty()) {
        return;
    }
    try {
        ctx.corpus->save(ctx.options.corpusPath,
                         ctx.state.defaultLibrary());
        (*ctx.err) << "[isamore_serve] corpus checkpoint (" << when
                   << "): saved " << ctx.options.corpusPath << "\n";
    } catch (const std::exception& e) {
        (*ctx.err) << "[isamore_serve] corpus checkpoint (" << when
                   << ") failed: " << e.what() << "\n";
    }
    ctx.err->flush();
}

/**
 * Write one response line.  This is the only function that ever touches
 * the output stream: a single mutex-guarded "line + newline + flush" so
 * concurrent lanes can never interleave bytes and downstream line-oriented
 * consumers (jq, the chaos harness) always see whole JSON documents.
 */
void
writeResponse(ServeContext& ctx, const Response& response)
{
    const std::string line = serializeResponse(response);
    std::lock_guard<std::mutex> lock(ctx.outMutex);
    (*ctx.out) << line << '\n';
    ctx.out->flush();
}

/**
 * Between-request intern sweep: under the exclusive isolation lane (no
 * request is mid-makeTerm), drop unreferenced interned nodes, refresh the
 * intern/pool telemetry gauges, and reset the per-window hit counters.
 * This is what bounds a long-lived daemon's memory: without it every
 * distinct analysis leaves its temporary terms in the table forever.
 */
void
purgeSweep(ServeContext& ctx)
{
    std::unique_lock<std::shared_mutex> exclusive(
        ctx.state.isolationLock());
    const size_t dropped = internPurge();
    ctx.state.recordPurge(dropped);
    recordProcessMetrics();  // intern.* / pool.* gauges post-purge
    internResetCounters();
    const InternStats stats = internStats();
    telemetry::Registry::instance()
        .gauge("server.intern_live_nodes")
        .set(static_cast<int64_t>(stats.terms));
    (*ctx.err) << "[isamore_serve] purge sweep: dropped " << dropped
               << " interned nodes, " << stats.terms << " live\n";
    ctx.err->flush();
    // The purge is the corpus's checkpoint interval: still under the
    // exclusive lane (no lane is mutating the corpus mid-request), note
    // how many interned nodes the corpus's strong references pinned
    // through the purge, then persist.
    if (ctx.corpus != nullptr) {
        telemetry::Registry::instance()
            .gauge("server.corpus_pinned_nodes")
            .set(static_cast<int64_t>(ctx.corpus->pinnedNodeCount()));
        saveCorpusCheckpoint(ctx, "purge sweep");
    }
}

/** One session lane: drain the queue until shutdown. */
void
laneMain(ServeContext& ctx)
{
    Request request;
    for (;;) {
        if (!ctx.queue.waitPop(request,
                               std::chrono::milliseconds(200))) {
            if (ctx.stopping.load(std::memory_order_acquire)) {
                // Interrupted: waitPop keeps returning queued items
                // until the ring is empty, so reaching false here means
                // the backlog is fully drained.
                return;
            }
            continue;
        }

        Budget root(requestBudgetSpec(request));
        const bool watched = request.deadlineMs > 0.0;
        if (watched) {
            ctx.inFlight.add(
                request.seq, &root,
                std::chrono::steady_clock::now() +
                    std::chrono::microseconds(static_cast<int64_t>(
                        request.deadlineMs * 1e3)));
        }

        Response response;
        if (request.wantsExclusive()) {
            // Fault-injected requests swap the process-global fault
            // registry, so nothing else may run beside them.
            std::unique_lock<std::shared_mutex> exclusive(
                ctx.state.isolationLock());
            response = ctx.state.executeRequest(request, root);
        } else {
            std::shared_lock<std::shared_mutex> shared(
                ctx.state.isolationLock());
            response = ctx.state.executeRequest(request, root);
        }

        if (watched) {
            ctx.inFlight.remove(request.seq);
            if (root.effectiveStop() == BudgetStop::Cancelled) {
                ctx.state.recordCancelled();
            }
        }

        ctx.state.recordServed(response.status, response.cached);
        writeResponse(ctx, response);

        // The response is out and this lane holds no references into
        // any shared e-graph: a natural quiescent point, so retired
        // e-graph storage from this request can be reclaimed.
        reclaim::quiescent();

        if (request.op == RequestOp::Analyze &&
            ctx.options.purgeEvery > 0) {
            const uint64_t n = ctx.analyzesSinceSweep.fetch_add(
                                   1, std::memory_order_acq_rel) +
                               1;
            if (n % ctx.options.purgeEvery == 0) {
                purgeSweep(ctx);
            }
        }
    }
}

/** Watchdog: poll the in-flight table and cancel overdue budgets. */
void
watchdogMain(ServeContext& ctx)
{
    const auto period =
        std::chrono::milliseconds(ctx.options.watchdogPollMs);
    while (!ctx.stopping.load(std::memory_order_acquire)) {
        const size_t reaped =
            ctx.inFlight.reapOverdue(std::chrono::steady_clock::now());
        if (reaped > 0) {
            ctx.watchdogCancellations.fetch_add(
                reaped, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(period);
    }
}

}  // namespace

int
serveLoop(std::istream& in, std::ostream& out, std::ostream& err,
          const ServeOptions& options)
{
    ServeContext ctx(options);
    ctx.out = &out;
    ctx.err = &err;

    if (!options.corpusPath.empty()) {
        ctx.corpus = std::make_unique<corpus::Corpus>();
        if (std::filesystem::exists(options.corpusPath)) {
            // A corrupt corpus refuses startup outright (the CLI's
            // invalid-input class): serving with silently-empty warm
            // state would mask the operator's mistake.
            try {
                ctx.corpus->load(options.corpusPath,
                                 ctx.state.defaultLibrary());
            } catch (const std::exception& e) {
                err << "[isamore_serve] error: " << e.what() << "\n";
                err.flush();
                return 3;
            }
            err << "[isamore_serve] corpus: loaded " << options.corpusPath
                << " (" << ctx.corpus->resultCount() << " results, "
                << ctx.corpus->chunkCount() << " AU chunks, "
                << ctx.corpus->librarySize() << " patterns)\n";
        } else if (options.corpusReadonly) {
            err << "[isamore_serve] error: --corpus-readonly with "
                   "missing corpus file: "
                << options.corpusPath << "\n";
            err.flush();
            return 3;
        } else {
            err << "[isamore_serve] corpus: " << options.corpusPath
                << " does not exist yet; starting empty\n";
        }
        err.flush();
        ctx.state.attachCorpus(ctx.corpus.get());
    }

    if (options.banner) {
        err << "[isamore_serve] serving JSON-lines on stdin: " << options.lanes
            << " lanes, queue " << ctx.queue.capacity() << ", purge every "
            << options.purgeEvery << " analyses\n";
        err.flush();
    }

    std::vector<std::thread> lanes;
    lanes.reserve(options.lanes);
    for (size_t i = 0; i < options.lanes; ++i) {
        lanes.emplace_back(laneMain, std::ref(ctx));
    }
    std::thread watchdog(watchdogMain, std::ref(ctx));

    // The caller thread is the reader: parse errors and overload
    // shedding are answered inline so a flooded queue still yields one
    // response per request line, never a silent drop.
    std::string line;
    uint64_t seq = 0;
    while (std::getline(in, line)) {
        ++seq;
        if (line.empty() ||
            line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;  // blank keep-alive lines are not requests
        }
        Request request = parseRequest(line, seq);
        if (!request.valid) {
            Response response = ctx.state.badRequestResponse(request);
            ctx.state.recordServed(response.status, false);
            writeResponse(ctx, response);
            continue;
        }
        if (!ctx.queue.tryPush(std::move(request))) {
            // tryPush leaves the request untouched when the ring is
            // full, so it is still safe to answer from.
            Response response = ctx.state.overloadedResponse(
                request, ctx.queue.capacity());
            ctx.state.recordServed(response.status, false);
            writeResponse(ctx, response);
        }
    }

    // EOF: let the lanes drain the backlog, then stop everything.
    ctx.stopping.store(true, std::memory_order_release);
    ctx.queue.interrupt();
    for (auto& lane : lanes) {
        lane.join();
    }
    watchdog.join();
    saveCorpusCheckpoint(ctx, "shutdown");

    if (options.banner) {
        const ServerCounters counters = ctx.state.counters();
        err << "[isamore_serve] shutdown: served " << counters.served
            << " (ok " << counters.ok << ", degraded " << counters.degraded
            << ", invalid " << counters.invalid << ", internal "
            << counters.internal << ", bad_request " << counters.badRequest
            << ", overloaded " << counters.overloaded << "), cache hits "
            << counters.cacheHits << ", watchdog cancellations "
            << ctx.watchdogCancellations.load() << ", purge sweeps "
            << counters.purgeSweeps << "\n";
        err.flush();
    }
    return 0;
}

}  // namespace server
}  // namespace isamore
