#include "server/serve.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "dsl/intern.hpp"
#include "isamore/report.hpp"
#include "server/observe.hpp"
#include "server/queue.hpp"
#include "server/session.hpp"
#include "support/budget.hpp"
#include "support/reclaim.hpp"
#include "support/telemetry.hpp"

namespace isamore {
namespace server {

namespace {

/**
 * The watchdog's view of running requests: root budgets keyed by request
 * sequence number, each with the wall-clock instant past which it must be
 * cancelled.  Budgets are registered only while the owning lane is inside
 * executeRequest, so the pointers never dangle.
 */
class InFlightTable {
 public:
    void
    add(uint64_t seq, Budget* budget,
        std::chrono::steady_clock::time_point deadline)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_[seq] = {budget, deadline};
    }

    void
    remove(uint64_t seq)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(seq);
    }

    /** Cancel every budget past its deadline; returns how many. */
    size_t
    reapOverdue(std::chrono::steady_clock::time_point now)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t reaped = 0;
        for (auto& [seq, entry] : entries_) {
            if (now >= entry.deadline && !entry.cancelled) {
                entry.budget->cancel();
                entry.cancelled = true;
                ++reaped;
            }
        }
        return reaped;
    }

 private:
    struct Entry {
        Budget* budget = nullptr;
        std::chrono::steady_clock::time_point deadline;
        bool cancelled = false;
    };
    std::mutex mutex_;
    std::map<uint64_t, Entry> entries_;
};

/** Cap on spans captured per request for the flight recorder; overflow
 *  only bumps the sink's dropped counter. */
constexpr size_t kFlightSinkCapacity = 4096;

/** Everything the lanes, reader, and watchdog share. */
struct ServeContext {
    explicit ServeContext(const ServeOptions& opts)
        : options(opts), queue(opts.queueCapacity) {}

    const ServeOptions& options;
    SharedState state;
    BoundedQueue<Request> queue;
    InFlightTable inFlight;

    std::mutex outMutex;
    std::ostream* out = nullptr;
    /** Every write to err -- notices AND event-log lines -- goes
     *  through errMutex as one complete line, so concurrent lanes can
     *  never interleave bytes mid-line. */
    std::mutex errMutex;
    std::ostream* err = nullptr;

    std::atomic<bool> stopping{false};
    std::atomic<uint64_t> analyzesSinceSweep{0};
    std::atomic<uint64_t> watchdogCancellations{0};

    /** Wakes the metrics-snapshot thread for prompt shutdown. */
    std::mutex stopMutex;
    std::condition_variable stopCv;

    /** Shared warm-start corpus (null = serving without one). */
    std::unique_ptr<corpus::Corpus> corpus;

    /** Live observability state (always present while serving). */
    std::unique_ptr<Observability> observe;
};

/** Write one complete notice line to the error stream. */
void
notice(ServeContext& ctx, const std::string& line)
{
    std::lock_guard<std::mutex> lock(ctx.errMutex);
    (*ctx.err) << line << '\n';
    ctx.err->flush();
}

/** Emit one event-log line (a complete JSON object) when enabled. */
void
emitEvent(ServeContext& ctx, const std::string& json)
{
    if (ctx.observe == nullptr || !ctx.observe->options().events) {
        return;
    }
    std::lock_guard<std::mutex> lock(ctx.errMutex);
    (*ctx.err) << json << '\n';
    ctx.err->flush();
}

/**
 * Record @p trace into @p slot's flight ring and, when the request
 * warrants a postmortem (non-ok outcome, or @p slowOk for an ok past
 * the SLO), dump it as a Perfetto trace.  @p dumpPath receives the
 * written path for the done event.
 */
void
recordFlight(ServeContext& ctx, size_t slot, RequestTrace trace,
             bool slowOk, std::string* dumpPath)
{
    if (ctx.observe == nullptr) {
        return;
    }
    const bool trigger = trace.status != Status::Ok || slowOk;
    FlightRecorder& ring = ctx.observe->flight(slot);
    ring.record(std::move(trace));
    if (!trigger || ctx.observe->options().flightDir.empty()) {
        return;
    }
    // The just-recorded trace is the newest ring entry.
    const RequestTrace* latest = ring.snapshot().back();
    const std::string path =
        dumpFlightTrace(ctx.observe->options().flightDir, *latest);
    if (path.empty()) {
        notice(ctx, "[isamore_serve] flight dump failed for " +
                        latest->requestId + " in " +
                        ctx.observe->options().flightDir);
        return;
    }
    telemetry::Registry::instance().counter("server.flight_dumps").add(1);
    if (dumpPath != nullptr) {
        *dumpPath = path;
    }
}

/** Latency-stage shorthand: record only when observability is live. */
void
observeStage(ServeContext& ctx, size_t slot, const char* stage,
             const char* op, const std::string& workload, uint64_t micros)
{
    if (ctx.observe != nullptr) {
        ctx.observe->latency().observe(slot, stage, op, workload, micros);
    }
}

/**
 * Checkpoint the corpus to disk if anything accumulated since the last
 * save.  Failures are notices, not crashes: the in-memory corpus stays
 * warm and the next checkpoint retries.
 */
void
saveCorpusCheckpoint(ServeContext& ctx, const char* when)
{
    if (ctx.corpus == nullptr || ctx.options.corpusReadonly ||
        !ctx.corpus->dirty()) {
        return;
    }
    try {
        ctx.corpus->save(ctx.options.corpusPath,
                         ctx.state.defaultLibrary());
        notice(ctx, std::string("[isamore_serve] corpus checkpoint (") +
                        when + "): saved " + ctx.options.corpusPath);
    } catch (const std::exception& e) {
        notice(ctx, std::string("[isamore_serve] corpus checkpoint (") +
                        when + ") failed: " + e.what());
    }
}

/**
 * Write one response line.  This is the only function that ever touches
 * the output stream: a single mutex-guarded "line + newline + flush" so
 * concurrent lanes can never interleave bytes and downstream line-oriented
 * consumers (jq, the chaos harness) always see whole JSON documents.
 */
void
writeResponse(ServeContext& ctx, const Response& response)
{
    const std::string line = serializeResponse(response);
    std::lock_guard<std::mutex> lock(ctx.outMutex);
    (*ctx.out) << line << '\n';
    ctx.out->flush();
}

/**
 * Between-request intern sweep: under the exclusive isolation lane (no
 * request is mid-makeTerm), drop unreferenced interned nodes, refresh the
 * intern/pool telemetry gauges, and reset the per-window hit counters.
 * This is what bounds a long-lived daemon's memory: without it every
 * distinct analysis leaves its temporary terms in the table forever.
 */
void
purgeSweep(ServeContext& ctx)
{
    std::unique_lock<std::shared_mutex> exclusive(
        ctx.state.isolationLock());
    const size_t dropped = internPurge();
    // One snapshot, taken under the same lock acquisition as the
    // purge-sweep increment, feeds the whole log line: re-reading the
    // counters field-by-field here could interleave with a concurrent
    // lane's recordServed (lanes only synchronize on the isolation lock
    // *during* execution, not around their counter updates) and report
    // a torn served/ok pair.
    const ServerCounters snapshot = ctx.state.recordPurge(dropped);
    recordProcessMetrics();  // intern.* / pool.* gauges post-purge
    internResetCounters();
    const InternStats stats = internStats();
    telemetry::Registry::instance()
        .gauge("server.intern_live_nodes")
        .set(static_cast<int64_t>(stats.terms));
    {
        std::ostringstream os;
        os << "[isamore_serve] purge sweep #" << snapshot.purgeSweeps
           << ": dropped " << dropped << " interned nodes, " << stats.terms
           << " live; served " << snapshot.served << " (ok " << snapshot.ok
           << ", degraded " << snapshot.degraded << ")";
        notice(ctx, os.str());
    }
    // The exclusive lane is a quiescent point (no live spans anywhere:
    // lanes are blocked outside executeRequest, the reader and watchdog
    // never open spans), so this is the one safe place to drop the
    // global tracer's buffers -- an always-on daemon would otherwise
    // accumulate span events until the per-thread cap.  Per-request
    // flight traces are unaffected: they capture via RequestSink.
    telemetry::Tracer::instance().clear();
    // The purge is the corpus's checkpoint interval: still under the
    // exclusive lane (no lane is mutating the corpus mid-request), note
    // how many interned nodes the corpus's strong references pinned
    // through the purge, then persist.
    if (ctx.corpus != nullptr) {
        telemetry::Registry::instance()
            .gauge("server.corpus_pinned_nodes")
            .set(static_cast<int64_t>(ctx.corpus->pinnedNodeCount()));
        saveCorpusCheckpoint(ctx, "purge sweep");
    }
}

/** One session lane: drain the queue until shutdown. */
void
laneMain(ServeContext& ctx, size_t lane)
{
    Request request;
    for (;;) {
        if (!ctx.queue.waitPop(request,
                               std::chrono::milliseconds(200))) {
            if (ctx.stopping.load(std::memory_order_acquire)) {
                // Interrupted: waitPop keeps returning queued items
                // until the ring is empty, so reaching false here means
                // the backlog is fully drained.
                return;
            }
            continue;
        }

        const char* op = opName(request.op);
        const uint64_t dispatchNs = telemetry::nowNs();
        const uint64_t queueWaitUs =
            request.acceptNs != 0 && dispatchNs > request.acceptNs
                ? (dispatchNs - request.acceptNs) / 1000
                : 0;
        observeStage(ctx, lane, kStageQueueWait, op, request.workload,
                     queueWaitUs);
        if (ctx.observe != nullptr && ctx.observe->options().events) {
            std::ostringstream ev;
            ev << "{\"event\": \"dispatch\", \"req\": \""
               << request.requestId << "\", \"lane\": " << lane
               << ", \"queueWaitUs\": " << queueWaitUs
               << ", \"ns\": " << dispatchNs << "}";
            emitEvent(ctx, ev.str());
        }

        Budget root(requestBudgetSpec(request));
        const bool watched = request.deadlineMs > 0.0;
        if (watched) {
            ctx.inFlight.add(
                request.seq, &root,
                std::chrono::steady_clock::now() +
                    std::chrono::microseconds(static_cast<int64_t>(
                        request.deadlineMs * 1e3)));
        }

        // Every span the pipeline closes while this request runs is
        // copied into the request's sink (the pool forwards the sink to
        // its workers), so the flight recorder gets the full span tree.
        telemetry::RequestSink sink(kFlightSinkCapacity);
        Response response;
        {
            telemetry::RequestSinkScope sinkScope(
                ctx.observe != nullptr ? &sink : nullptr);
            if (request.wantsExclusive()) {
                // Fault-injected requests swap the process-global fault
                // registry, so nothing else may run beside them.
                std::unique_lock<std::shared_mutex> exclusive(
                    ctx.state.isolationLock());
                response = ctx.state.executeRequest(request, root);
            } else {
                std::shared_lock<std::shared_mutex> shared(
                    ctx.state.isolationLock());
                response = ctx.state.executeRequest(request, root);
            }
        }

        if (watched) {
            ctx.inFlight.remove(request.seq);
            if (root.effectiveStop() == BudgetStop::Cancelled) {
                ctx.state.recordCancelled();
            }
        }

        ctx.state.recordServed(response.status, response.cached);
        const uint64_t serializeStartNs = telemetry::nowNs();
        writeResponse(ctx, response);
        const uint64_t endNs = telemetry::nowNs();

        if (ctx.observe != nullptr) {
            const uint64_t serializeUs = (endNs - serializeStartNs) / 1000;
            observeStage(ctx, lane, kStageAnalyze, op, request.workload,
                         static_cast<uint64_t>(response.elapsedMs * 1e3));
            observeStage(ctx, lane, kStageSerialize, op, request.workload,
                         serializeUs);

            RequestTrace trace;
            trace.requestId = request.requestId;
            trace.idJson = response.idJson;
            trace.op = op;
            trace.workload = request.workload;
            trace.status = response.status;
            trace.queueWaitMs = static_cast<double>(queueWaitUs) / 1e3;
            trace.elapsedMs = response.elapsedMs;
            trace.startNs =
                request.acceptNs != 0 ? request.acceptNs : dispatchNs;
            trace.endNs = endNs;
            trace.events = sink.take();
            const size_t spanCount = trace.events.size();
            const bool slowOk = response.status == Status::Ok &&
                                ctx.observe->options().sloMs > 0.0 &&
                                response.elapsedMs >
                                    ctx.observe->options().sloMs;
            std::string dumpPath;
            recordFlight(ctx, lane, std::move(trace), slowOk, &dumpPath);
            if (ctx.observe->options().events) {
                std::ostringstream ev;
                ev << "{\"event\": \"done\", \"req\": \""
                   << request.requestId << "\", \"status\": \""
                   << statusName(response.status)
                   << "\", \"code\": " << statusCode(response.status)
                   << ", \"cached\": "
                   << (response.cached ? "true" : "false")
                   << ", \"queueWaitUs\": " << queueWaitUs
                   << ", \"serializeUs\": " << serializeUs
                   << ", \"elapsedMs\": " << response.elapsedMs
                   << ", \"spans\": " << spanCount;
                if (!dumpPath.empty()) {
                    ev << ", \"flight\": \""
                       << jsonEscapeString(dumpPath) << "\"";
                }
                ev << ", \"ns\": " << endNs << "}";
                emitEvent(ctx, ev.str());
            }
        }

        // The response is out and this lane holds no references into
        // any shared e-graph: a natural quiescent point, so retired
        // e-graph storage from this request can be reclaimed.
        reclaim::quiescent();

        if (request.op == RequestOp::Analyze &&
            ctx.options.purgeEvery > 0) {
            const uint64_t n = ctx.analyzesSinceSweep.fetch_add(
                                   1, std::memory_order_acq_rel) +
                               1;
            if (n % ctx.options.purgeEvery == 0) {
                purgeSweep(ctx);
            }
        }
    }
}

/** Write @p body to @p path via a temp file + atomic rename, so a
 *  reader tailing the snapshot never sees a half-written document. */
bool
writeAtomic(const std::string& path, const std::string& body)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out.good()) {
            return false;
        }
        out << body;
        if (!out.good()) {
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    return !ec;
}

/** One metrics snapshot: <base>.json + <base>.prom. */
void
writeMetricsSnapshot(ServeContext& ctx)
{
    const std::string& base = ctx.options.metricsPath;
    if (base.empty()) {
        return;
    }
    const bool okJson = writeAtomic(
        base + ".json",
        buildMetricsJson(ctx.state, ctx.observe.get()) + "\n");
    const bool okProm = writeAtomic(
        base + ".prom", buildExposition(ctx.state, ctx.observe.get()));
    if (!okJson || !okProm) {
        notice(ctx, "[isamore_serve] metrics snapshot failed: " + base);
    }
}

/** Periodic metrics-snapshot thread (only spawned with an interval). */
void
metricsMain(ServeContext& ctx)
{
    const auto interval =
        std::chrono::milliseconds(ctx.options.metricsIntervalMs);
    std::unique_lock<std::mutex> lock(ctx.stopMutex);
    while (!ctx.stopping.load(std::memory_order_acquire)) {
        if (ctx.stopCv.wait_for(lock, interval, [&] {
                return ctx.stopping.load(std::memory_order_acquire);
            })) {
            return;
        }
        lock.unlock();
        writeMetricsSnapshot(ctx);
        lock.lock();
    }
}

/** Watchdog: poll the in-flight table and cancel overdue budgets. */
void
watchdogMain(ServeContext& ctx)
{
    const auto period =
        std::chrono::milliseconds(ctx.options.watchdogPollMs);
    while (!ctx.stopping.load(std::memory_order_acquire)) {
        const size_t reaped =
            ctx.inFlight.reapOverdue(std::chrono::steady_clock::now());
        if (reaped > 0) {
            ctx.watchdogCancellations.fetch_add(
                reaped, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(period);
    }
}

}  // namespace

int
serveLoop(std::istream& in, std::ostream& out, std::ostream& err,
          const ServeOptions& rawOptions)
{
    ServeOptions options = rawOptions;
    if (options.metricsIntervalMs > 0 && options.metricsPath.empty()) {
        options.metricsPath = "isamore_metrics";
    }
    ServeContext ctx(options);
    ctx.out = &out;
    ctx.err = &err;

    // std::cin and std::cerr arrive tied to std::cout: every getline on
    // the reader thread and every stderr notice/event line would flush
    // `out` WITHOUT holding outMutex, racing a lane mid-writeResponse on
    // the shared streambuf (observed as byte-identical duplicated
    // response lines under event-log load).  writeResponse flushes after
    // every line anyway, so the ties buy nothing -- sever them for the
    // daemon's lifetime and restore on exit for embedding tests.
    struct TieGuard {
        std::ios* stream;
        std::ostream* prior;
        TieGuard(std::ios& s) : stream(&s), prior(s.tie(nullptr)) {}
        ~TieGuard() { stream->tie(prior); }
    } inTie{in}, errTie{err};

    // The daemon always serves with telemetry enabled: the metrics op,
    // latency digests, corpus warm-path counters, and flight spans all
    // feed off it, and the bench enabled-overhead gate keeps the cost
    // below 2%.  Telemetry never feeds back into results (PR 5's
    // contract), so goldens stay byte-identical.  Restored on exit so
    // embedding tests see the state they started with.
    const bool telemetryWasEnabled = telemetry::enabled();
    telemetry::setEnabled(true);
    struct TelemetryRestore {
        bool prior;
        ~TelemetryRestore() { telemetry::setEnabled(prior); }
    } telemetryRestore{telemetryWasEnabled};
    ctx.observe = std::make_unique<Observability>(options.observe,
                                                  options.lanes);
    ctx.state.attachObservability(ctx.observe.get());
    const size_t readerSlot = ctx.observe->readerSlot();

    if (!options.corpusPath.empty()) {
        ctx.corpus = std::make_unique<corpus::Corpus>();
        if (std::filesystem::exists(options.corpusPath)) {
            // A corrupt corpus refuses startup outright (the CLI's
            // invalid-input class): serving with silently-empty warm
            // state would mask the operator's mistake.
            try {
                ctx.corpus->load(options.corpusPath,
                                 ctx.state.defaultLibrary());
            } catch (const std::exception& e) {
                err << "[isamore_serve] error: " << e.what() << "\n";
                err.flush();
                return 3;
            }
            err << "[isamore_serve] corpus: loaded " << options.corpusPath
                << " (" << ctx.corpus->resultCount() << " results, "
                << ctx.corpus->chunkCount() << " AU chunks, "
                << ctx.corpus->librarySize() << " patterns)\n";
        } else if (options.corpusReadonly) {
            err << "[isamore_serve] error: --corpus-readonly with "
                   "missing corpus file: "
                << options.corpusPath << "\n";
            err.flush();
            return 3;
        } else {
            err << "[isamore_serve] corpus: " << options.corpusPath
                << " does not exist yet; starting empty\n";
        }
        err.flush();
        ctx.state.attachCorpus(ctx.corpus.get());
    }

    if (options.banner) {
        std::ostringstream banner;
        banner << "[isamore_serve] serving JSON-lines on stdin: "
               << options.lanes << " lanes, queue " << ctx.queue.capacity()
               << ", purge every " << options.purgeEvery << " analyses";
        if (options.observe.events) {
            banner << ", event log on";
        }
        if (!options.observe.flightDir.empty()) {
            banner << ", flight dumps -> " << options.observe.flightDir
                   << " (ring " << options.observe.flightRing;
            if (options.observe.sloMs > 0.0) {
                banner << ", SLO " << options.observe.sloMs << " ms";
            }
            banner << ")";
        }
        if (!options.metricsPath.empty()) {
            banner << ", metrics -> " << options.metricsPath
                   << ".{json,prom}";
            if (options.metricsIntervalMs > 0) {
                banner << " every " << options.metricsIntervalMs << " ms";
            }
        }
        notice(ctx, banner.str());
    }

    std::vector<std::thread> lanes;
    lanes.reserve(options.lanes);
    for (size_t i = 0; i < options.lanes; ++i) {
        lanes.emplace_back(laneMain, std::ref(ctx), i);
    }
    std::thread watchdog(watchdogMain, std::ref(ctx));
    std::thread metrics;
    if (options.metricsIntervalMs > 0 && !options.metricsPath.empty()) {
        metrics = std::thread(metricsMain, std::ref(ctx));
    }

    // The caller thread is the reader: parse errors and overload
    // shedding are answered inline so a flooded queue still yields one
    // response per request line, never a silent drop.
    std::string line;
    uint64_t seq = 0;
    // Answers the reader writes itself (rejects, sheds) get their
    // latency/flight slot too: the last slot, which no lane owns.
    auto readerAnswer = [&](const Request& request, Response response,
                            const char* eventKind, uint64_t startNs) {
        ctx.state.recordServed(response.status, false);
        const uint64_t serializeStartNs = telemetry::nowNs();
        writeResponse(ctx, response);
        const uint64_t endNs = telemetry::nowNs();
        observeStage(ctx, readerSlot, kStageSerialize, eventKind,
                     request.workload, (endNs - serializeStartNs) / 1000);

        RequestTrace trace;
        trace.requestId = request.requestId;
        trace.idJson = response.idJson;
        trace.op = eventKind;
        trace.workload = request.workload;
        trace.status = response.status;
        trace.elapsedMs =
            static_cast<double>(endNs - startNs) / 1e6;
        trace.startNs = startNs;
        trace.endNs = endNs;
        std::string dumpPath;
        recordFlight(ctx, readerSlot, std::move(trace), false, &dumpPath);
        if (ctx.observe->options().events) {
            std::ostringstream ev;
            ev << "{\"event\": \"" << eventKind << "\", \"req\": \""
               << request.requestId << "\", \"status\": \""
               << statusName(response.status) << "\"";
            if (!response.error.empty()) {
                ev << ", \"error\": \"" << jsonEscapeString(response.error)
                   << "\"";
            }
            if (!dumpPath.empty()) {
                ev << ", \"flight\": \"" << jsonEscapeString(dumpPath)
                   << "\"";
            }
            ev << ", \"ns\": " << endNs << "}";
            emitEvent(ctx, ev.str());
        }
    };
    while (std::getline(in, line)) {
        ++seq;
        if (line.empty() ||
            line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;  // blank keep-alive lines are not requests
        }
        const uint64_t readNs = telemetry::nowNs();
        Request request = parseRequest(line, seq);
        request.acceptNs = telemetry::nowNs();
        const uint64_t parseUs = (request.acceptNs - readNs) / 1000;
        observeStage(ctx, readerSlot, kStageParse,
                     request.valid ? opName(request.op) : "reject",
                     request.workload, parseUs);
        if (!request.valid) {
            readerAnswer(request, ctx.state.badRequestResponse(request),
                         "reject", readNs);
            continue;
        }
        if (ctx.observe->options().events) {
            std::ostringstream ev;
            ev << "{\"event\": \"accept\", \"req\": \"" << request.requestId
               << "\", \"id\": " << request.idJson << ", \"op\": \""
               << opName(request.op) << "\"";
            if (!request.workload.empty()) {
                ev << ", \"workload\": \""
                   << jsonEscapeString(request.workload) << "\"";
            }
            ev << ", \"parseUs\": " << parseUs
               << ", \"ns\": " << request.acceptNs << "}";
            emitEvent(ctx, ev.str());
        }
        if (!ctx.queue.tryPush(std::move(request))) {
            // tryPush leaves the request untouched when the ring is
            // full, so it is still safe to answer from.
            readerAnswer(request,
                         ctx.state.overloadedResponse(
                             request, ctx.queue.capacity()),
                         "shed", readNs);
        }
    }

    // EOF: let the lanes drain the backlog, then stop everything.
    ctx.stopping.store(true, std::memory_order_release);
    ctx.queue.interrupt();
    for (auto& lane : lanes) {
        lane.join();
    }
    watchdog.join();
    {
        std::lock_guard<std::mutex> lock(ctx.stopMutex);
    }
    ctx.stopCv.notify_all();
    if (metrics.joinable()) {
        metrics.join();
    }
    // Final snapshot so a crash-free shutdown always leaves the freshest
    // counters on disk (also the only snapshot when no interval is set).
    writeMetricsSnapshot(ctx);
    saveCorpusCheckpoint(ctx, "shutdown");

    if (options.banner) {
        const ServerCounters counters = ctx.state.counters();
        std::ostringstream os;
        os << "[isamore_serve] shutdown: served " << counters.served
           << " (ok " << counters.ok << ", degraded " << counters.degraded
           << ", invalid " << counters.invalid << ", internal "
           << counters.internal << ", bad_request " << counters.badRequest
           << ", overloaded " << counters.overloaded << "), cache hits "
           << counters.cacheHits << ", watchdog cancellations "
           << ctx.watchdogCancellations.load() << ", purge sweeps "
           << counters.purgeSweeps << "\n";
        const uint64_t flightDumps =
            telemetry::Registry::instance()
                .counter("server.flight_dumps")
                .value();
        if (flightDumps > 0) {
            os << "[isamore_serve] flight dumps written: " << flightDumps
               << " -> " << options.observe.flightDir << "\n";
        }
        err << os.str();
        err.flush();
    }
    return 0;
}

}  // namespace server
}  // namespace isamore
