#include "server/session.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "corpus/warm.hpp"
#include "dsl/intern.hpp"
#include "isamore/report.hpp"
#include "server/observe.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/pool.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"
#include "workloads/libraries.hpp"

namespace isamore {
namespace server {

namespace {

/** ---- JSON parsing -------------------------------------------------- */

class JsonParser {
 public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool
    parse(JsonValue& out, std::string& error)
    {
        try {
            skipWs();
            out = parseValue();
            skipWs();
            if (pos_ != text_.size()) {
                fail("trailing bytes after the JSON value");
            }
            return true;
        } catch (const std::runtime_error& e) {
            error = e.what();
            return false;
        }
    }

 private:
    [[noreturn]] void
    fail(const std::string& why)
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool
    consumeLiteral(const char* literal)
    {
        const size_t n = std::strlen(literal);
        if (text_.compare(pos_, n, literal) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        // Depth cap: a hostile request line must not overflow the stack.
        if (++depth_ > 32) {
            fail("nesting deeper than 32");
        }
        JsonValue value;
        const char c = peek();
        if (c == '{') {
            value = parseObject();
        } else if (c == '[') {
            value = parseArray();
        } else if (c == '"') {
            value.type = JsonValue::Type::String;
            value.text = parseString();
        } else if (c == 't' && consumeLiteral("true")) {
            value.type = JsonValue::Type::Bool;
            value.boolean = true;
        } else if (c == 'f' && consumeLiteral("false")) {
            value.type = JsonValue::Type::Bool;
            value.boolean = false;
        } else if (c == 'n' && consumeLiteral("null")) {
            value.type = JsonValue::Type::Null;
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            value.type = JsonValue::Type::Number;
            value.number = parseNumber();
        } else {
            fail("unexpected character");
        }
        --depth_;
        return value;
    }

    JsonValue
    parseObject()
    {
        JsonValue value;
        value.type = JsonValue::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            value.members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue value;
        value.type = JsonValue::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipWs();
            value.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("bad \\u escape digit");
                    }
                }
                // Encode as UTF-8 (surrogate pairs left as-is: request
                // ids never need astral-plane characters, and round-
                // tripping the raw code units is lossless for matching).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    double
    parseNumber()
    {
        const size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() && std::isdigit(
                   static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            while (pos_ < text_.size() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            while (pos_ < text_.size() && std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        try {
            size_t used = 0;
            const double value = std::stod(token, &used);
            if (used != token.size() || !std::isfinite(value)) {
                fail("bad number '" + token + "'");
            }
            return value;
        } catch (const std::logic_error&) {
            fail("bad number '" + token + "'");
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
    int depth_ = 0;
};

/** Render a JSON number the way we echo ids: integers stay integral. */
std::string
numberToJson(double value)
{
    if (std::floor(value) == value && std::fabs(value) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", value);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

std::optional<rii::Mode>
parseModeText(const std::string& text)
{
    if (text == "default") return rii::Mode::Default;
    if (text == "astsize") return rii::Mode::AstSize;
    if (text == "kdsample") return rii::Mode::KDSample;
    if (text == "vector") return rii::Mode::Vector;
    if (text == "noeqsat") return rii::Mode::NoEqSat;
    if (text == "llmt") return rii::Mode::LLMT;
    return std::nullopt;
}

/** Workload resolution, mirroring the CLI's name space exactly. */
std::optional<workloads::Workload>
findWorkload(const std::string& name)
{
    static const std::vector<
        std::pair<std::string, workloads::Workload (*)()>>
        kernels = {
            {"2dconv", workloads::makeConv2D},
            {"matmul", workloads::makeMatMul},
            {"matchain", workloads::makeMatChain},
            {"fft", workloads::makeFft},
            {"stencil", workloads::makeStencil},
            {"qprod", workloads::makeQProd},
            {"qrdecomp", workloads::makeQRDecomp},
            {"deriche", workloads::makeDeriche},
            {"sha", workloads::makeSha},
            {"all", workloads::makeAll},
            {"bitlinear", workloads::makeBitLinear},
            {"kyber", workloads::makeKyberNtt},
        };
    for (const auto& [key, factory] : kernels) {
        if (key == name) {
            return factory();
        }
    }
    auto specs = workloads::liquidDspSpecs();
    specs.push_back(workloads::cimgSpec());
    for (const auto& s : workloads::pclSpecs()) {
        specs.push_back(s);
    }
    for (const auto& spec : specs) {
        std::string full = spec.library + "/" + spec.name;
        std::string lowered;
        for (char c : full) {
            lowered += static_cast<char>(std::tolower(c));
        }
        if (lowered == name || spec.name == name) {
            return workloads::makeLibraryModule(spec);
        }
    }
    return std::nullopt;
}

}  // namespace

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (type != Type::Object) {
        return nullptr;
    }
    for (const auto& [k, v] : members) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

bool
parseJson(const std::string& text, JsonValue& out, std::string& error)
{
    return JsonParser(text).parse(out, error);
}

std::string
jsonEscapeString(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char*
statusName(Status status)
{
    switch (status) {
      case Status::Ok: return "ok";
      case Status::BadRequest: return "bad_request";
      case Status::Invalid: return "invalid";
      case Status::Internal: return "internal";
      case Status::Degraded: return "degraded";
      case Status::Overloaded: return "overloaded";
    }
    return "?";
}

int
statusCode(Status status)
{
    return static_cast<int>(status);
}

const char*
opName(RequestOp op)
{
    switch (op) {
      case RequestOp::Analyze: return "analyze";
      case RequestOp::Ping: return "ping";
      case RequestOp::Stats: return "stats";
      case RequestOp::Metrics: return "metrics";
      case RequestOp::Corpus: return "corpus";
    }
    return "?";
}

Request
parseRequest(const std::string& line, uint64_t seq)
{
    Request request;
    request.seq = seq;
    request.idJson = std::to_string(seq);
    // The stable wire id, assigned before any validation can bail so
    // even a reject is attributable: seq is the 1-based stdin line
    // number (the reader counts every line, blank or not).
    request.requestId = "r-" + std::to_string(seq);

    JsonValue root;
    std::string error;
    if (!parseJson(line, root, error)) {
        request.error = error;
        return request;
    }
    if (root.type != JsonValue::Type::Object) {
        request.error = "request must be a JSON object";
        return request;
    }

    // The id is echoed even for otherwise-broken requests, so pull it
    // out before any validation can bail.
    if (const JsonValue* id = root.find("id")) {
        if (id->type == JsonValue::Type::String) {
            request.idJson = "\"" + jsonEscapeString(id->text) + "\"";
        } else if (id->type == JsonValue::Type::Number) {
            request.idJson = numberToJson(id->number);
        } else {
            request.error = "field 'id' must be a string or a number";
            return request;
        }
    }

    auto wantString = [&](const JsonValue& v, const char* name,
                          std::string& into) {
        if (v.type != JsonValue::Type::String) {
            request.error = std::string("field '") + name +
                            "' must be a string";
            return false;
        }
        into = v.text;
        return true;
    };
    auto wantBool = [&](const JsonValue& v, const char* name, bool& into) {
        if (v.type != JsonValue::Type::Bool) {
            request.error = std::string("field '") + name +
                            "' must be a boolean";
            return false;
        }
        into = v.boolean;
        return true;
    };

    std::string opText = "analyze";
    for (const auto& [key, value] : root.members) {
        if (key == "id") {
            continue;  // handled above
        } else if (key == "op") {
            if (!wantString(value, "op", opText)) {
                return request;
            }
        } else if (key == "workload") {
            if (!wantString(value, "workload", request.workload)) {
                return request;
            }
        } else if (key == "mode") {
            if (!wantString(value, "mode", request.modeText)) {
                return request;
            }
        } else if (key == "extendedRules") {
            if (!wantBool(value, "extendedRules", request.extendedRules)) {
                return request;
            }
        } else if (key == "strategy") {
            if (!wantString(value, "strategy", request.strategyText)) {
                return request;
            }
        } else if (key == "inject") {
            if (!wantString(value, "inject", request.inject)) {
                return request;
            }
        } else if (key == "cache") {
            if (!wantBool(value, "cache", request.cache)) {
                return request;
            }
        } else if (key == "deadlineMs") {
            if (value.type != JsonValue::Type::Number ||
                !(value.number > 0.0)) {
                request.error = "field 'deadlineMs' must be a positive "
                                "number";
                return request;
            }
            request.deadlineMs = value.number;
        } else if (key == "maxUnits") {
            if (value.type != JsonValue::Type::Number ||
                value.number < 1.0 ||
                std::floor(value.number) != value.number) {
                request.error = "field 'maxUnits' must be a positive "
                                "integer";
                return request;
            }
            request.maxUnits = static_cast<uint64_t>(value.number);
        } else if (key == "threads") {
            if (value.type != JsonValue::Type::Number ||
                value.number < 1.0 || value.number > 64.0 ||
                std::floor(value.number) != value.number) {
                request.error = "field 'threads' must be an integer "
                                "between 1 and 64";
                return request;
            }
            request.threads = static_cast<size_t>(value.number);
        } else {
            // Strict: a typo'd field name must not silently change the
            // request's meaning.
            request.error = "unknown field '" + key + "'";
            return request;
        }
    }

    if (opText == "analyze") {
        request.op = RequestOp::Analyze;
        if (request.workload.empty()) {
            request.error = "analyze requests need a 'workload' field";
            return request;
        }
    } else if (opText == "ping") {
        request.op = RequestOp::Ping;
    } else if (opText == "stats") {
        request.op = RequestOp::Stats;
    } else if (opText == "metrics") {
        request.op = RequestOp::Metrics;
    } else if (opText == "corpus") {
        request.op = RequestOp::Corpus;
    } else {
        request.error = "unknown op '" + opText +
                        "' (expected analyze|ping|stats|metrics|corpus)";
        return request;
    }

    request.valid = true;
    return request;
}

BudgetSpec
requestBudgetSpec(const Request& request)
{
    BudgetSpec spec;
    if (request.deadlineMs > 0.0) {
        spec.maxSeconds = request.deadlineMs / 1e3;
    }
    if (request.maxUnits > 0) {
        spec.maxUnits = request.maxUnits;
    }
    return spec;
}

std::string
serializeResponse(const Response& response)
{
    std::ostringstream os;
    os << "{\"id\": " << response.idJson;
    if (!response.requestId.empty()) {
        os << ", \"req\": \"" << jsonEscapeString(response.requestId)
           << "\"";
    }
    os << ", \"status\": \"" << statusName(response.status)
       << "\", \"code\": " << statusCode(response.status);
    if (!response.workload.empty()) {
        os << ", \"workload\": \"" << jsonEscapeString(response.workload)
           << "\"";
    }
    if (response.pong) {
        os << ", \"pong\": true";
    }
    if (!response.statsJson.empty()) {
        os << ", \"stats\": " << response.statsJson;
    }
    if (!response.metricsJson.empty()) {
        os << ", \"metrics\": " << response.metricsJson;
    }
    if (!response.exposition.empty()) {
        os << ", \"exposition\": \""
           << jsonEscapeString(response.exposition) << "\"";
    }
    if (!response.corpusJson.empty()) {
        os << ", \"corpus\": " << response.corpusJson;
    }
    if (response.cached) {
        os << ", \"cached\": true";
    }
    if (!response.result.empty()) {
        os << ", \"result\": \"" << jsonEscapeString(response.result)
           << "\"";
    }
    if (!response.diagnostics.empty()) {
        os << ", \"diagnostics\": \""
           << jsonEscapeString(response.diagnostics) << "\"";
    }
    if (!response.error.empty()) {
        os << ", \"error\": \"" << jsonEscapeString(response.error)
           << "\"";
    }
    os << ", \"elapsedMs\": " << response.elapsedMs << "}";
    return os.str();
}

/** ---- SharedState --------------------------------------------------- */

SharedState::SharedState() : default_(rules::defaultLibrary()) {}

void
SharedState::attachCorpus(corpus::Corpus* corpus)
{
    corpus_ = corpus;
}

std::shared_ptr<const AnalyzedWorkload>
SharedState::getOrAnalyze(const std::string& name)
{
    std::lock_guard<std::mutex> lock(workloadMutex_);
    auto it = workloads_.find(name);
    if (it != workloads_.end()) {
        return it->second;
    }
    auto workload = findWorkload(name);
    if (!workload.has_value()) {
        return nullptr;
    }
    auto analyzed = std::make_shared<AnalyzedWorkload>(
        analyzeWorkload(std::move(*workload)));
    // Prime the e-graph's lazy read caches while we still hold the
    // insertion lock: after this the shared graph is only ever read, so
    // concurrent sessions never race on a refresh (see EGraph docs).
    analyzed->program.egraph.classIds();
    workloads_.emplace(name, analyzed);
    return analyzed;
}

const rules::RulesetLibrary&
SharedState::extendedLibrary()
{
    std::lock_guard<std::mutex> lock(libraryMutex_);
    if (extended_ == nullptr) {
        extended_ = std::make_unique<rules::RulesetLibrary>(
            rules::extendedLibrary());
    }
    return *extended_;
}

Response
SharedState::runAnalysis(const Request& request, Budget& rootBudget)
{
    Response response;
    response.idJson = request.idJson;
    response.workload = request.workload;

    const auto mode = parseModeText(request.modeText);
    if (!mode.has_value()) {
        response.status = Status::Invalid;
        response.error = "unknown mode: " + request.modeText;
        return response;
    }
    std::optional<Strategy> strategy;
    if (!request.strategyText.empty()) {
        std::string strategyError;
        strategy = parseStrategy(request.strategyText, strategyError);
        if (!strategy.has_value()) {
            response.status = Status::Invalid;
            response.error = "bad strategy: " + strategyError;
            return response;
        }
    }

    std::shared_ptr<const AnalyzedWorkload> analyzed;
    try {
        analyzed = getOrAnalyze(request.workload);
    } catch (const std::exception& e) {
        response.status = Status::Internal;
        response.error = std::string("workload analysis failed: ") +
                         e.what();
        return response;
    }
    if (analyzed == nullptr) {
        response.status = Status::Invalid;
        response.error = "unknown workload: " + request.workload +
                         " (send {\"op\": \"stats\"} or see isamore_cli "
                         "list)";
        return response;
    }

    // Only unconstrained, fault-free requests may use the response
    // cache: anything with a budget, an injection, or a pinned thread
    // count must actually run to observe its own degradation (or, for
    // threads, to actually exercise the pipeline at that width).  A
    // requested strategy also runs uncached: only the default schedule
    // is proven byte-identical to the cached (golden) documents.
    const bool cacheable = request.cache && request.inject.empty() &&
                           request.deadlineMs == 0.0 &&
                           request.maxUnits == 0 &&
                           request.threads == 0 &&
                           request.strategyText.empty();
    const std::string cacheKey = request.workload + '\x1f' +
                                 rii::modeName(*mode) + '\x1f' +
                                 (request.extendedRules ? "x" : "-");
    if (cacheable) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = responseCache_.find(cacheKey);
        if (it != responseCache_.end()) {
            Response cached = it->second;
            cached.idJson = request.idJson;
            cached.cached = true;
            return cached;
        }
    }

    // Per-request fault scope.  The caller holds the exclusive isolation
    // lane whenever inject is non-empty, so the process-global registry
    // swap cannot leak faults into a concurrently running request.
    std::optional<fault::Scope> scope;

    // Pin the pool width for the duration of the request.  The caller
    // holds the exclusive isolation lane whenever threads != 0, so the
    // process-global pool swap cannot race another request.
    struct ThreadPin {
        bool active;
        size_t previous = 0;
        explicit ThreadPin(size_t threads) : active(threads != 0)
        {
            if (active) {
                previous = globalThreadCount();
                setGlobalThreads(threads);
            }
        }
        ~ThreadPin()
        {
            if (active) {
                setGlobalThreads(previous);
            }
        }
    } threadPin(request.threads);

    try {
        if (!request.inject.empty()) {
            scope.emplace(request.inject);
        }

        rii::RiiConfig config = rii::RiiConfig::forMode(*mode);
        if (strategy.has_value()) {
            config.eqsat.strategy = *strategy;
        }
        config.parentBudget = &rootBudget;
        const rules::RulesetLibrary& library =
            request.extendedRules ? extendedLibrary() : default_;
        // Thread-pinned requests exist to exercise the pipeline at that
        // width, so they must not be satisfied from the corpus (the warm
        // wrapper also self-bypasses its result cache under armed faults
        // or a constrained root budget).
        const bool warm = corpus_ != nullptr && request.threads == 0;
        rii::RiiResult result =
            warm ? corpus::identifyInstructions(*analyzed, library,
                                                config, *corpus_)
                 : identifyInstructions(*analyzed, library, config);

        response.result = resultToJson(*analyzed, result);
        if (result.diagnostics.degraded()) {
            response.status = Status::Degraded;
            response.diagnostics = result.diagnostics.summary();
        } else {
            response.status = Status::Ok;
            if (cacheable) {
                std::lock_guard<std::mutex> lock(cacheMutex_);
                if (responseCache_.size() >= kMaxCachedResponses) {
                    responseCache_.clear();
                }
                responseCache_.emplace(cacheKey, response);
            }
        }
    } catch (const UserError& e) {
        response.status = Status::Invalid;
        response.error = e.what();
    } catch (const InternalError& e) {
        response.status = Status::Internal;
        response.error = e.what();
    } catch (const std::bad_alloc&) {
        response.status = Status::Internal;
        response.error = "out of memory";
    } catch (const std::exception& e) {
        response.status = Status::Internal;
        response.error = e.what();
    }
    return response;
}

Response
SharedState::executeRequest(const Request& request, Budget& rootBudget)
{
    Stopwatch watch;
    // The request-level span: with a RequestSink installed on this
    // thread (the serve loop does that), every pipeline span closed in
    // here lands in the request's flight trace under this root.
    TELEM_SPAN_ARGS("server.request", "server",
                    "\"req\": \"" +
                        telemetry::jsonEscape(request.requestId) +
                        "\", \"op\": \"" + opName(request.op) +
                        "\", \"workload\": \"" +
                        telemetry::jsonEscape(request.workload) + "\"");
    Response response;
    response.idJson = request.idJson;
    try {
        switch (request.op) {
          case RequestOp::Ping:
            response.status = Status::Ok;
            response.pong = true;
            break;
          case RequestOp::Stats: {
            const ServerCounters c = counters();
            const InternStats intern = internStats();
            std::ostringstream os;
            os << "{\"served\": " << c.served << ", \"ok\": " << c.ok
               << ", \"degraded\": " << c.degraded
               << ", \"invalid\": " << c.invalid
               << ", \"internal\": " << c.internal
               << ", \"badRequest\": " << c.badRequest
               << ", \"overloaded\": " << c.overloaded
               << ", \"cacheHits\": " << c.cacheHits
               << ", \"cancelled\": " << c.cancelled
               << ", \"purgeSweeps\": " << c.purgeSweeps
               << ", \"purgedNodes\": " << c.purgedNodes
               << ", \"internTerms\": " << intern.terms
               << ", \"workloadsCached\": " << workloadCacheSize() << "}";
            response.status = Status::Ok;
            response.statsJson = os.str();
            break;
          }
          case RequestOp::Metrics:
            // Live snapshot: counters are mutex-guarded, registry
            // metrics are relaxed atomics, latency digests lock one
            // lane slot at a time -- no lane quiesces for this.
            response.metricsJson = buildMetricsJson(*this, observability_);
            response.exposition = buildExposition(*this, observability_);
            response.status = Status::Ok;
            break;
          case RequestOp::Corpus:
            response.corpusJson = corpusStatusJson(*this);
            response.status = Status::Ok;
            break;
          case RequestOp::Analyze:
            response = runAnalysis(request, rootBudget);
            break;
        }
    } catch (const std::exception& e) {
        // Nothing below may take the daemon down; runAnalysis already
        // maps its own failures, this is the last-resort fence.
        response.status = Status::Internal;
        response.error = e.what();
    } catch (...) {
        response.status = Status::Internal;
        response.error = "unknown exception";
    }
    // Centralized so every path -- including a response-cache copy,
    // whose stored requestId belongs to the request that filled it --
    // echoes the id of *this* request.
    response.requestId = request.requestId;
    response.elapsedMs = watch.seconds() * 1e3;
    return response;
}

Response
SharedState::overloadedResponse(const Request& request,
                                size_t queueCapacity)
{
    Response response;
    response.idJson = request.idJson;
    response.requestId = request.requestId;
    response.status = Status::Overloaded;
    response.error = "request queue full (capacity " +
                     std::to_string(queueCapacity) +
                     "); retry with backoff";
    return response;
}

Response
SharedState::badRequestResponse(const Request& request)
{
    Response response;
    response.idJson = request.idJson;
    response.requestId = request.requestId;
    response.status = Status::BadRequest;
    response.error = request.error.empty() ? "malformed request"
                                           : request.error;
    return response;
}

ServerCounters
SharedState::counters() const
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    return counters_;
}

void
SharedState::recordServed(Status status, bool cached)
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    ++counters_.served;
    switch (status) {
      case Status::Ok: ++counters_.ok; break;
      case Status::Degraded: ++counters_.degraded; break;
      case Status::Invalid: ++counters_.invalid; break;
      case Status::Internal: ++counters_.internal; break;
      case Status::BadRequest: ++counters_.badRequest; break;
      case Status::Overloaded: ++counters_.overloaded; break;
    }
    if (cached) {
        ++counters_.cacheHits;
    }
}

ServerCounters
SharedState::recordPurge(size_t droppedNodes)
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    ++counters_.purgeSweeps;
    counters_.purgedNodes += droppedNodes;
    return counters_;
}

void
SharedState::recordCancelled()
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    ++counters_.cancelled;
}

size_t
SharedState::workloadCacheSize() const
{
    std::lock_guard<std::mutex> lock(workloadMutex_);
    return workloads_.size();
}

void
SharedState::clearResponseCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    responseCache_.clear();
}

}  // namespace server
}  // namespace isamore
