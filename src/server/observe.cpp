#include "server/observe.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "corpus/corpus.hpp"

namespace isamore {
namespace server {

namespace {

/** The composite digest key: fields never contain '\x1f'. */
std::string
digestKey(const std::string& stage, const std::string& op,
          const std::string& workload)
{
    return stage + '\x1f' + op + '\x1f' + (workload.empty() ? "-"
                                                            : workload);
}

struct KeyParts {
    std::string stage;
    std::string op;
    std::string workload;
};

KeyParts
splitKey(const std::string& key)
{
    KeyParts parts;
    const size_t a = key.find('\x1f');
    const size_t b = key.find('\x1f', a + 1);
    parts.stage = key.substr(0, a);
    parts.op = key.substr(a + 1, b - a - 1);
    parts.workload = key.substr(b + 1);
    return parts;
}

}  // namespace

// -------------------------------------------------------- LatencyRecorder

LatencyRecorder::LatencyRecorder(size_t slots)
{
    slots_.reserve(slots == 0 ? 1 : slots);
    for (size_t i = 0; i < (slots == 0 ? 1 : slots); ++i) {
        slots_.push_back(std::make_unique<Slot>());
    }
}

void
LatencyRecorder::observe(size_t slot, const char* stage,
                         const std::string& op,
                         const std::string& workload, uint64_t micros)
{
    Slot& s = *slots_[slot % slots_.size()];
    std::lock_guard<std::mutex> lock(s.mutex);
    s.digests[digestKey(stage, op, workload)].observe(micros);
}

std::map<std::string, LatencyDigest>
LatencyRecorder::merged() const
{
    std::map<std::string, LatencyDigest> out;
    for (const auto& slot : slots_) {
        std::lock_guard<std::mutex> lock(slot->mutex);
        for (const auto& [key, digest] : slot->digests) {
            out[key].merge(digest);
        }
    }
    // Per-(stage, op) aggregates across workloads, under "_all".
    std::map<std::string, LatencyDigest> aggregates;
    for (const auto& [key, digest] : out) {
        const KeyParts parts = splitKey(key);
        aggregates[digestKey(parts.stage, parts.op, "_all")].merge(digest);
    }
    for (auto& [key, digest] : aggregates) {
        out[key].merge(digest);
    }
    return out;
}

std::string
LatencyRecorder::toJson() const
{
    const auto digests = merged();
    // std::map ordering makes the nesting walk deterministic: keys
    // sharing a stage (and then an op) are adjacent.
    std::ostringstream os;
    os << "{";
    std::string openStage;
    std::string openOp;
    bool firstStage = true;
    bool firstOp = true;
    bool firstWorkload = true;
    for (const auto& [key, digest] : digests) {
        const KeyParts parts = splitKey(key);
        if (parts.stage != openStage) {
            if (!openStage.empty()) {
                os << "}}";
            }
            os << (firstStage ? "" : ", ") << "\""
               << jsonEscapeString(parts.stage) << "\": {";
            firstStage = false;
            openStage = parts.stage;
            openOp.clear();
            firstOp = true;
        }
        if (parts.op != openOp) {
            if (!openOp.empty()) {
                os << "}";
            }
            os << (firstOp ? "" : ", ") << "\""
               << jsonEscapeString(parts.op) << "\": {";
            firstOp = false;
            openOp = parts.op;
            firstWorkload = true;
        }
        os << (firstWorkload ? "" : ", ") << "\""
           << jsonEscapeString(parts.workload) << "\": {\"count\": "
           << digest.count() << ", \"mean_us\": " << digest.mean()
           << ", \"p50_us\": " << digest.quantile(0.5)
           << ", \"p90_us\": " << digest.quantile(0.9)
           << ", \"p99_us\": " << digest.quantile(0.99)
           << ", \"max_us\": " << digest.max() << "}";
        firstWorkload = false;
    }
    if (!openStage.empty()) {
        os << "}}";
    }
    os << "}";
    return os.str();
}

std::string
LatencyRecorder::toPrometheus() const
{
    const auto digests = merged();
    std::ostringstream os;
    if (digests.empty()) {
        return "";
    }
    os << "# TYPE isamore_server_latency_us summary\n";
    for (const auto& [key, digest] : digests) {
        const KeyParts parts = splitKey(key);
        const std::string labels = "stage=\"" + parts.stage + "\",op=\"" +
                                   parts.op + "\",workload=\"" +
                                   parts.workload + "\"";
        for (const auto& [name, q] :
             {std::pair<const char*, double>{"0.5", 0.5},
              {"0.9", 0.9},
              {"0.99", 0.99}}) {
            os << "isamore_server_latency_us{" << labels << ",quantile=\""
               << name << "\"} " << digest.quantile(q) << "\n";
        }
        os << "isamore_server_latency_us_sum{" << labels << "} "
           << digest.sum() << "\n";
        os << "isamore_server_latency_us_count{" << labels << "} "
           << digest.count() << "\n";
    }
    return os.str();
}

// -------------------------------------------------------- FlightRecorder

void
FlightRecorder::record(RequestTrace trace)
{
    ring_[next_] = std::move(trace);
    next_ = (next_ + 1) % ring_.size();
    if (count_ < ring_.size()) {
        ++count_;
    }
}

std::vector<const RequestTrace*>
FlightRecorder::snapshot() const
{
    std::vector<const RequestTrace*> out;
    out.reserve(count_);
    // Oldest entry sits at next_ once the ring wrapped, else at 0.
    const size_t begin = count_ == ring_.size() ? next_ : 0;
    for (size_t i = 0; i < count_; ++i) {
        out.push_back(&ring_[(begin + i) % ring_.size()]);
    }
    return out;
}

std::string
flightTraceJson(const RequestTrace& trace)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    // Synthetic request-level span on its own track, so even a trace
    // with no pipeline spans (a reader-side reject, a shed) is a valid,
    // non-empty Perfetto document.
    os << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": 1000000, \"name\": "
          "\"thread_name\", \"args\": {\"name\": \"request\"}}";
    const uint64_t durNs =
        trace.endNs > trace.startNs ? trace.endNs - trace.startNs : 0;
    os << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": 1000000, "
          "\"name\": \"server.request\", \"cat\": \"server\", \"ts\": "
       << trace.startNs / 1000 << "." << (trace.startNs % 1000) / 100
       << ", \"dur\": " << durNs / 1000 << "." << (durNs % 1000) / 100
       << ", \"args\": {\"req\": \"" << jsonEscapeString(trace.requestId)
       << "\", \"id\": " << (trace.idJson.empty() ? "null" : trace.idJson)
       << ", \"op\": \"" << jsonEscapeString(trace.op)
       << "\", \"workload\": \"" << jsonEscapeString(trace.workload)
       << "\", \"status\": \"" << statusName(trace.status)
       << "\", \"queueWaitMs\": " << trace.queueWaitMs
       << ", \"elapsedMs\": " << trace.elapsedMs << "}}";
    // Pipeline spans, one Perfetto track per recording thread.
    std::vector<uint32_t> namedTids;
    for (const auto& entry : trace.events) {
        bool seen = false;
        for (uint32_t tid : namedTids) {
            if (tid == entry.tid) {
                seen = true;
                break;
            }
        }
        if (!seen) {
            namedTids.push_back(entry.tid);
            os << ",\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << entry.tid
               << ", \"name\": \"thread_name\", \"args\": {\"name\": "
                  "\"thread-"
               << entry.tid << "\"}}";
        }
        const telemetry::TraceEvent& event = entry.event;
        os << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << entry.tid
           << ", \"name\": \""
           << jsonEscapeString(event.name == nullptr ? "?" : event.name)
           << "\", \"cat\": \""
           << jsonEscapeString(event.cat == nullptr ? "isamore"
                                                    : event.cat)
           << "\", \"ts\": " << event.startNs / 1000 << "."
           << (event.startNs % 1000) / 100
           << ", \"dur\": " << event.durNs / 1000 << "."
           << (event.durNs % 1000) / 100;
        if (!event.args.empty()) {
            os << ", \"args\": {" << event.args << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

std::string
dumpFlightTrace(const std::string& dir, const RequestTrace& trace)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/flight_" + trace.requestId + ".json";
    std::ofstream out(path);
    if (!out.good()) {
        return "";
    }
    out << flightTraceJson(trace);
    return out.good() ? path : "";
}

// --------------------------------------------------------- Observability

Observability::Observability(const ObserveOptions& options, size_t lanes)
    : options_(options), latency_(lanes + 1)
{
    flights_.reserve(lanes + 1);
    for (size_t i = 0; i < lanes + 1; ++i) {
        flights_.push_back(
            std::make_unique<FlightRecorder>(options.flightRing));
    }
}

// ---------------------------------------------------- exposition builders

namespace {

std::string
serverCountersJson(const ServerCounters& c)
{
    std::ostringstream os;
    os << "{\"served\": " << c.served << ", \"ok\": " << c.ok
       << ", \"degraded\": " << c.degraded << ", \"invalid\": " << c.invalid
       << ", \"internal\": " << c.internal
       << ", \"badRequest\": " << c.badRequest
       << ", \"overloaded\": " << c.overloaded
       << ", \"cacheHits\": " << c.cacheHits
       << ", \"cancelled\": " << c.cancelled
       << ", \"purgeSweeps\": " << c.purgeSweeps
       << ", \"purgedNodes\": " << c.purgedNodes << "}";
    return os.str();
}

}  // namespace

std::string
buildMetricsJson(const SharedState& state,
                 const Observability* observability)
{
    std::ostringstream os;
    os << "{\"server\": " << serverCountersJson(state.counters())
       << ", \"latency\": "
       << (observability != nullptr ? observability->latency().toJson()
                                    : std::string("{}"))
       << ", \"registry\": "
       << telemetry::Registry::instance().toJson(/*compact=*/true) << "}";
    return os.str();
}

std::string
buildExposition(const SharedState& state,
                const Observability* observability)
{
    const ServerCounters c = state.counters();
    std::ostringstream os;
    auto family = [&os](const char* name, const char* type,
                        uint64_t value) {
        os << "# TYPE isamore_server_" << name << " " << type << "\n"
           << "isamore_server_" << name << " " << value << "\n";
    };
    family("served", "counter", c.served);
    family("ok", "counter", c.ok);
    family("degraded", "counter", c.degraded);
    family("invalid", "counter", c.invalid);
    family("internal", "counter", c.internal);
    family("bad_request", "counter", c.badRequest);
    family("overloaded", "counter", c.overloaded);
    family("cache_hits", "counter", c.cacheHits);
    family("cancelled", "counter", c.cancelled);
    family("purge_sweeps", "counter", c.purgeSweeps);
    family("purged_nodes", "counter", c.purgedNodes);
    if (observability != nullptr) {
        os << observability->latency().toPrometheus();
    }
    os << telemetry::Registry::instance().toPrometheus();
    return os.str();
}

std::string
corpusStatusJson(const SharedState& state)
{
    const corpus::Corpus* corpus = state.corpusStore();
    std::ostringstream os;
    if (corpus == nullptr) {
        os << "{\"attached\": false}";
        return os.str();
    }
    auto& registry = telemetry::Registry::instance();
    os << "{\"attached\": true, \"sections\": {\"strategies\": "
       << corpus->strategyCount()
       << ", \"patterns\": " << corpus->librarySize()
       << ", \"chunks\": " << corpus->chunkCount()
       << ", \"results\": " << corpus->resultCount()
       << ", \"egraphs\": " << corpus->egraphCount()
       << "}, \"hits\": " << registry.counter("corpus.hits").value()
       << ", \"misses\": " << registry.counter("corpus.misses").value()
       << ", \"crossHits\": "
       << registry.counter("corpus.cross_hits").value()
       << ", \"skippedPairs\": "
       << registry.counter("corpus.skipped_pairs").value()
       << ", \"pinnedNodes\": " << corpus->pinnedNodeCount() << "}";
    return os.str();
}

}  // namespace server
}  // namespace isamore
