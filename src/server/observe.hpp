/**
 * @file
 * Live observability for the serving loop (DESIGN.md "Live
 * observability").
 *
 * Three cooperating pieces, all strictly outside the deterministic
 * report partition (they never touch a Response's `result` bytes, so
 * committed goldens stay byte-identical with the layer on):
 *
 *  - LatencyRecorder: per-slot (lane-local) mergeable percentile
 *    digests keyed by (stage, op, workload).  A lane only ever touches
 *    its own slot, so recording contends with nothing; snapshots merge
 *    the slots into deterministic global percentiles (LatencyDigest's
 *    contract: quantiles depend on the sample multiset only, not the
 *    lane split).
 *
 *  - FlightRecorder: a per-slot ring of the last N finished request
 *    span-trees (RequestTrace).  Each slot is owned by exactly one
 *    thread (its lane, or the reader), so record/snapshot take no lock;
 *    the ring overwrites oldest-first.  flightTraceJson() renders one
 *    trace as a Perfetto-loadable Chrome trace document and
 *    dumpFlightTrace() writes it to the flight directory -- the serve
 *    loop does that automatically for every non-ok response and for ok
 *    responses that blow the latency SLO.
 *
 *  - Exposition builders: buildMetricsJson()/buildExposition() render
 *    the full telemetry registry plus server counters plus latency
 *    digests as a single-line JSON document and as Prometheus text
 *    exposition; corpusStatusJson() renders the `corpus` op's view of
 *    the attached corpus.  All of them read live atomics/mutex-guarded
 *    snapshots -- no quiescing of lanes required.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/session.hpp"
#include "support/latency.hpp"
#include "support/telemetry.hpp"

namespace isamore {
namespace server {

/** Observability tunables of one serve loop run. */
struct ObserveOptions {
    /** Emit the JSON-lines event log (accept/dispatch/done/...) on the
     *  error stream. */
    bool events = false;
    /** Directory for automatic flight-recorder dumps ("" = no dumps;
     *  the in-memory ring still records). */
    std::string flightDir;
    /** Per-slot flight-recorder ring capacity (last N requests). */
    size_t flightRing = 16;
    /** Latency SLO in milliseconds: an ok response slower than this
     *  still dumps a flight trace (0 = no SLO trigger). */
    double sloMs = 0.0;
};

/** The stage names every per-request digest is keyed under. */
constexpr const char* kStageQueueWait = "queue_wait";
constexpr const char* kStageParse = "parse";
constexpr const char* kStageAnalyze = "analyze";
constexpr const char* kStageSerialize = "serialize";

/**
 * Lane-local latency digests with deterministic merged snapshots.
 * observe() must be called with the caller's own slot; snapshots
 * (toJson/toPrometheus/merged) briefly lock one slot at a time.
 */
class LatencyRecorder {
 public:
    explicit LatencyRecorder(size_t slots);

    /** Record @p micros for (stage, op, workload) into @p slot. */
    void observe(size_t slot, const char* stage, const std::string& op,
                 const std::string& workload, uint64_t micros);

    /**
     * Merge every slot into global digests keyed
     * "stage\x1fop\x1fworkload"; each (stage, op) additionally
     * aggregates across workloads under the pseudo-workload "_all".
     */
    std::map<std::string, LatencyDigest> merged() const;

    /** Nested single-line JSON: {"stage": {"op": {"workload": {...}}}}. */
    std::string toJson() const;

    /** Prometheus summary series: isamore_server_latency_us{...}. */
    std::string toPrometheus() const;

    size_t slots() const { return slots_.size(); }

 private:
    struct Slot {
        mutable std::mutex mutex;
        std::map<std::string, LatencyDigest> digests;
    };
    std::vector<std::unique_ptr<Slot>> slots_;
};

/** One finished request's span tree plus its identity and outcome. */
struct RequestTrace {
    std::string requestId;  ///< "r-<line>" wire id
    std::string idJson;     ///< client id as a JSON token
    std::string op;         ///< wire op name
    std::string workload;
    Status status = Status::Internal;
    double queueWaitMs = 0.0;
    double elapsedMs = 0.0;
    uint64_t startNs = 0;  ///< accept instant (telemetry clock)
    uint64_t endNs = 0;    ///< response-written instant
    std::vector<telemetry::RequestSink::Entry> events;
};

/**
 * A bounded ring of the last N RequestTraces, owned by exactly one
 * thread (no internal locking -- the per-slot ownership is the
 * concurrency story, which is what makes it lock-free for the lanes).
 */
class FlightRecorder {
 public:
    explicit FlightRecorder(size_t capacity)
        : ring_(capacity == 0 ? 1 : capacity)
    {
    }

    /** Append @p trace, overwriting the oldest entry when full. */
    void record(RequestTrace trace);

    /** Entries oldest-first (at most capacity()). */
    std::vector<const RequestTrace*> snapshot() const;

    size_t size() const { return count_; }
    size_t capacity() const { return ring_.size(); }

 private:
    std::vector<RequestTrace> ring_;
    size_t next_ = 0;   ///< slot the next record lands in
    size_t count_ = 0;  ///< min(records so far, capacity)
};

/**
 * Render @p trace as a Chrome trace-event JSON document (Perfetto
 * loadable): one synthetic "server.request" span covering the whole
 * request (args carry request id / op / workload / status / queue
 * wait), then every captured pipeline span on its recording thread's
 * track.
 */
std::string flightTraceJson(const RequestTrace& trace);

/**
 * Write flightTraceJson(trace) to `<dir>/flight_<requestId>.json`.
 * @return the path written, or "" on failure (failures are the
 *         caller's notice to log; they never take the daemon down).
 */
std::string dumpFlightTrace(const std::string& dir,
                            const RequestTrace& trace);

/** The serve loop's aggregate observability state, shared by lanes. */
class Observability {
 public:
    /**
     * @p lanes session lanes; slot `lanes` belongs to the reader
     * thread (it answers bad_request/overloaded inline).
     */
    Observability(const ObserveOptions& options, size_t lanes);

    const ObserveOptions& options() const { return options_; }
    LatencyRecorder& latency() { return latency_; }
    const LatencyRecorder& latency() const { return latency_; }
    FlightRecorder& flight(size_t slot) { return *flights_[slot]; }
    size_t flightSlots() const { return flights_.size(); }
    size_t readerSlot() const { return flights_.size() - 1; }

 private:
    ObserveOptions options_;
    LatencyRecorder latency_;
    std::vector<std::unique_ptr<FlightRecorder>> flights_;
};

/**
 * The `metrics` op / snapshot-file payload: one single-line JSON object
 * `{"server": <counters>, "latency": <digests>, "registry": <registry>}`.
 * @p observability may be null (bare SharedState embedding, e.g. bench).
 */
std::string buildMetricsJson(const SharedState& state,
                             const Observability* observability);

/** The same data as Prometheus text exposition. */
std::string buildExposition(const SharedState& state,
                            const Observability* observability);

/** The `corpus` op payload: section entry counts, warm-path counters,
 *  and the pinned-node gauge (ROADMAP item 2's inspection slice). */
std::string corpusStatusJson(const SharedState& state);

}  // namespace server
}  // namespace isamore
