/**
 * @file
 * Request/response model of the analysis server.
 *
 * The wire protocol is JSON-lines: one request object per stdin line, one
 * response object per stdout line (see DESIGN.md "Server mode & overload
 * taxonomy").  This header owns everything about a single request that
 * does not involve threads: the strict little JSON parser, request
 * validation, the per-response status taxonomy (mirroring the CLI's exit
 * codes), response serialization, and SharedState -- the process-wide
 * warm state (analyzed-workload cache, compiled rule libraries, response
 * cache, counters) that a daemon amortizes across requests.
 *
 * Fault isolation contract: executeRequest() maps every per-request
 * failure -- malformed input, unknown workload, tripped budget, injected
 * fault, internal error, allocation failure -- to a structured Response
 * and never lets an exception escape, so one poisoned request cannot take
 * the serving loop down.  The pipeline result embedded in an "ok" or
 * "degraded" response is the byte-exact resultToJson() document the
 * single-shot CLI would have printed (the golden-identity suite pins
 * this), carried as one escaped JSON string field so the response itself
 * stays a single strict JSON line.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "isamore/isamore.hpp"
#include "support/budget.hpp"

namespace isamore {
namespace corpus {
class Corpus;
}  // namespace corpus
namespace server {

class Observability;

/** @name Minimal strict JSON
 *  Just enough JSON for the request protocol: objects, arrays, strings,
 *  finite numbers, booleans, null; UTF-8 passed through opaquely;
 *  trailing garbage rejected.  Exposed for the server tests.
 *  @{ */

struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;                    ///< String payload
    std::vector<JsonValue> items;        ///< Array payload
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    const JsonValue* find(const std::string& key) const;
};

/**
 * Parse @p text as one complete JSON document.
 * @return false with a position-carrying message in @p error on any
 *         syntax violation (including trailing bytes after the value).
 */
bool parseJson(const std::string& text, JsonValue& out, std::string& error);

/** Escape @p text for embedding inside a JSON string literal. */
std::string jsonEscapeString(const std::string& text);

/** @} */

/**
 * Per-response status taxonomy.  The first five mirror the CLI's exit
 * codes one-for-one (a scripted client can treat `code` exactly like a
 * single-shot exit status); Overloaded is server-only load shedding.
 */
enum class Status {
    Ok = 0,          ///< exit 0: clean result
    BadRequest = 2,  ///< exit 2: malformed JSON / unknown or mistyped field
    Invalid = 3,     ///< exit 3: unknown workload/mode, bad inject spec
    Internal = 4,    ///< exit 4: invariant violation, allocation failure
    Degraded = 5,    ///< exit 5: partial result (budget/fault degradation)
    Overloaded = 6,  ///< server-only: bounded queue full, request shed
};

/** Wire name of a status ("ok", "bad_request", ...). */
const char* statusName(Status status);

/** Numeric code of a status (the CLI exit-code column). */
int statusCode(Status status);

/** What a request asks the server to do. */
enum class RequestOp { Analyze, Ping, Stats, Metrics, Corpus };

/** Wire name of an op ("analyze", "ping", ...). */
const char* opName(RequestOp op);

/**
 * One parsed request line.  `valid == false` means the line failed
 * parsing/validation; `error` carries the reason and the request must be
 * answered with BadRequest without touching the pipeline.
 */
struct Request {
    uint64_t seq = 0;     ///< arrival index (used as the default id)
    std::string idJson;   ///< client id, re-serialized as a JSON token
    /**
     * Server-assigned stable request id, "r-<line>" where <line> is the
     * 1-based stdin line number.  Assigned by parseRequest to every
     * request -- including malformed ones -- threaded through the
     * event log, latency digests, pipeline spans, and flight-recorder
     * dumps, and echoed back as the response's "req" field so a client
     * can join its logs against the server's.
     */
    std::string requestId;
    uint64_t acceptNs = 0;  ///< accept instant (telemetry clock)
    RequestOp op = RequestOp::Analyze;
    std::string workload;
    /**
     * Mode as sent.  Kept textual so an unknown mode surfaces as Invalid
     * (the CLI's exit-3 class) from execution, not as a parse error.
     */
    std::string modeText = "default";
    bool extendedRules = false;
    /**
     * EqSat scheduling strategy, kept textual like mode: a built-in name
     * or a full spec (strategy.hpp), validated at execution so a bad
     * value surfaces as Invalid.  Non-default strategies skip the
     * response cache — only the default schedule is proven
     * byte-identical to the cached goldens.
     */
    std::string strategyText;
    double deadlineMs = 0.0;  ///< 0 = no per-request deadline
    uint64_t maxUnits = 0;    ///< 0 = no per-request work-unit cap
    std::string inject;       ///< fault spec; non-empty => exclusive lane
    bool cache = true;        ///< response-cache opt-out for benchmarks
    /**
     * Pool lanes to run this request with (0 = the server's default).
     * Pinning the thread count swaps the process-global pool, so such
     * requests take the exclusive lane and skip the response cache —
     * the point is to actually exercise the pipeline at that width
     * (determinism harnesses assert the bytes match every other width).
     */
    size_t threads = 0;
    bool valid = false;
    std::string error;

    /** Whether execution needs the exclusive isolation lane. */
    bool wantsExclusive() const
    {
        return !inject.empty() || threads != 0;
    }
};

/**
 * Parse + validate one request line.  Never throws: malformed input
 * yields `valid == false`.  @p seq becomes the id when the client sent
 * none.
 */
Request parseRequest(const std::string& line, uint64_t seq);

/** The root-budget limits a request asks for (unlimited fields when 0). */
BudgetSpec requestBudgetSpec(const Request& request);

/** One response line, pre-serialization. */
struct Response {
    std::string idJson = "null";
    std::string requestId;    ///< echoed "req" field (empty = omitted)
    Status status = Status::Internal;
    std::string workload;     ///< echoed for analyze responses
    std::string result;       ///< raw resultToJson() bytes (may be empty)
    std::string diagnostics;  ///< RunDiagnostics::summary() when degraded
    std::string error;        ///< human-readable failure reason
    std::string statsJson;    ///< inline object for the stats op
    std::string metricsJson;  ///< inline object for the metrics op
    std::string exposition;   ///< Prometheus text for the metrics op
    std::string corpusJson;   ///< inline object for the corpus op
    bool pong = false;        ///< ping marker
    double elapsedMs = 0.0;
    bool cached = false;      ///< served from the response cache
};

/** Serialize @p response as one strict JSON line (no trailing newline). */
std::string serializeResponse(const Response& response);

/** Rolling counters the stats op and the purge sweep report. */
struct ServerCounters {
    uint64_t served = 0;       ///< responses written, every status
    uint64_t ok = 0;
    uint64_t degraded = 0;
    uint64_t invalid = 0;
    uint64_t internal = 0;
    uint64_t badRequest = 0;
    uint64_t overloaded = 0;
    uint64_t cacheHits = 0;
    uint64_t purgeSweeps = 0;
    uint64_t purgedNodes = 0;  ///< interned nodes dropped by sweeps
    uint64_t cancelled = 0;    ///< budgets cancelled by the watchdog
};

/**
 * Process-wide warm state shared by every session lane.
 *
 * Thread safety: the workload cache and response cache are mutex-guarded;
 * cached AnalyzedWorkloads are immutable after insertion (their e-graph
 * read caches are primed while the insertion lock is held, so concurrent
 * const reads never race on a lazy refresh); counters are guarded by
 * their own mutex.  The isolation lock is the fault/purge exclusion
 * documented in serve.cpp.
 */
class SharedState {
 public:
    SharedState();

    /**
     * Execute @p request under @p rootBudget (the caller owns budget
     * registration with the watchdog and the isolation lock).  Returns a
     * fully populated Response; never throws.
     */
    Response executeRequest(const Request& request, Budget& rootBudget);

    /** Answer for a request shed because the bounded queue was full. */
    Response overloadedResponse(const Request& request,
                                size_t queueCapacity);

    /** Answer for a request that failed parsing/validation. */
    Response badRequestResponse(const Request& request);

    /** Snapshot of the rolling counters. */
    ServerCounters counters() const;

    /** Bump one counter cell by status (and the served total). */
    void recordServed(Status status, bool cached);

    /**
     * Record a purge sweep's result and return the counters as they
     * stood at that instant, snapshotted under the same lock acquisition
     * as the increment.  The purge-sweep log line reports this single
     * snapshot -- re-reading counters() after releasing the lock could
     * interleave with a concurrent lane's recordServed and log a torn
     * view.
     */
    ServerCounters recordPurge(size_t droppedNodes);

    /** Record a watchdog cancellation. */
    void recordCancelled();

    /**
     * The readers/writer lane gate: normal requests run shared,
     * fault-injected requests and purge sweeps run exclusive (the fault
     * registry is process-global; a purge must not race makeTerm).
     */
    std::shared_mutex& isolationLock() { return isolation_; }

    /** Number of distinct workloads analyzed and cached so far. */
    size_t workloadCacheSize() const;

    /** Drop every cached response (tests; the cache is also bounded). */
    void clearResponseCache();

    /**
     * Attach a shared persistent corpus (serve startup; may be null).
     * Analyze requests then run through the corpus warm-start path:
     * result-cache hits skip the pipeline, AU chunks replay, and mined
     * patterns accumulate -- all in memory.  Persisting the corpus to
     * disk stays the serving loop's job (checkpoint saves at purge
     * sweeps), which is how read-only mounts stay warm without writes.
     * Requests that pin a thread count bypass the corpus entirely: their
     * point is to exercise the pipeline at that width.
     */
    void attachCorpus(corpus::Corpus* corpus);

    /** The attached corpus, or nullptr. */
    corpus::Corpus* corpusStore() const { return corpus_; }

    /**
     * Attach the serve loop's observability state (may be null, the
     * default).  The metrics op renders its latency digests; nothing on
     * the execution path reads it otherwise.
     */
    void attachObservability(const Observability* observability)
    {
        observability_ = observability;
    }

    /** The process-wide default rule library (keys the corpus frame). */
    const rules::RulesetLibrary& defaultLibrary() const { return default_; }

 private:
    std::shared_ptr<const AnalyzedWorkload>
    getOrAnalyze(const std::string& name);

    const rules::RulesetLibrary& extendedLibrary();

    Response runAnalysis(const Request& request, Budget& rootBudget);

    std::shared_mutex isolation_;

    mutable std::mutex workloadMutex_;
    std::unordered_map<std::string, std::shared_ptr<const AnalyzedWorkload>>
        workloads_;

    // Rule libraries compile once per process, not once per request --
    // half of the warm-start story.  The extended library is rarely
    // asked for, so it builds on first use.
    rules::RulesetLibrary default_;
    std::mutex libraryMutex_;
    std::unique_ptr<rules::RulesetLibrary> extended_;  // built on demand

    // Response cache: deterministic documents keyed by
    // workload/mode/extended.  Only unconstrained, fault-free requests
    // hit or fill it (anything budgeted or injected must re-run).
    mutable std::mutex cacheMutex_;
    std::unordered_map<std::string, Response> responseCache_;
    static constexpr size_t kMaxCachedResponses = 128;

    mutable std::mutex countersMutex_;
    ServerCounters counters_;

    corpus::Corpus* corpus_ = nullptr;  ///< shared warm-start corpus
    const Observability* observability_ = nullptr;  ///< serve-loop state
};

}  // namespace server
}  // namespace isamore
