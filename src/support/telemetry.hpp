/**
 * @file
 * Pipeline telemetry: a span tracer and a metrics registry.
 *
 * Telemetry is a strict side channel over the pipeline: probes record
 * what happened but never feed a value back into a result, so pipeline
 * output is byte-identical with telemetry on or off at every thread
 * count (pinned by tests/isamore/golden_identity_test.cpp).
 *
 * Overhead contract: telemetry is *disabled by default* and a disabled
 * probe costs one relaxed atomic load plus a predictable branch --
 * cheap enough to leave TELEM_SPAN / Counter::add in the EqSat and AU
 * hot loops (the bench-smoke CI job gates end-to-end overhead of the
 * disabled probes below 2% against a build with the probes compiled
 * out via -DISAMORE_TELEMETRY=OFF).  Probes that must build a dynamic
 * payload (span args, record JSON) are the caller's job to gate:
 * construct the payload only when enabled() is true (TELEM_SPAN_ARGS
 * does this for span arguments).
 *
 * Span tracer: TELEM_SPAN("eqsat.iter", "eqsat") opens an RAII scope
 * recorded at destruction into a per-thread buffer.  Buffers are
 * single-writer (the owning thread appends, nothing else touches them
 * while threads run), so the record path takes no lock and performs no
 * synchronization beyond the enable load; registration of a new
 * thread's buffer is the only mutex-guarded step.  Tracer::
 * toChromeJson() exports everything as Chrome trace-event JSON
 * ("ph":"X" complete events, microsecond timestamps) loadable in
 * Perfetto or chrome://tracing; it and clear() must only run at
 * quiescent points (no live spans / no pool job in flight).
 *
 * Metrics registry: named counters (monotone, relaxed-atomic add),
 * gauges (last-write-wins), histograms (power-of-two buckets), and
 * ordered record streams (small JSON objects appended by cold merge
 * code, e.g. one record per EqSat iteration or AU shard).  Names are
 * dot-hierarchical with an optional {label=value} suffix on the leaf
 * (e.g. "eqsat.applications{rule=add-comm}"); toJson() nests on the
 * dots and sorts every level, so output layout is deterministic even
 * though counter *values* from racy phases (pool steals, intern hits)
 * need not be.  Registry::counter() resolution takes a mutex -- hot
 * paths resolve once and cache the pointer (stable for process
 * lifetime).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace isamore {
namespace telemetry {

/** Whether probes were compiled in (ISAMORE_TELEMETRY=ON builds). */
#if defined(ISAMORE_NO_TELEMETRY)
constexpr bool kCompiled = false;
#else
constexpr bool kCompiled = true;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/** The per-probe gate: one relaxed atomic load. */
inline bool
enabled()
{
#if defined(ISAMORE_NO_TELEMETRY)
    return false;
#else
    return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/** Flip the global probe gate (no-op when compiled out). */
void setEnabled(bool on);

/** Nanoseconds since the process telemetry epoch (steady clock). */
uint64_t nowNs();

/** One completed span, as recorded into a thread buffer. */
struct TraceEvent {
    const char* name = nullptr;  ///< static string (macro call sites)
    const char* cat = nullptr;   ///< static category string
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    /** Extra Chrome "args" fields as the *inside* of a JSON object
     *  (e.g. "\"iter\": 3"); empty for most spans. */
    std::string args;
};

/**
 * The process-wide span sink: one append-only buffer per recording
 * thread, registered on first use and kept alive past thread exit so a
 * late export still sees every event.
 */
class Tracer {
 public:
    static Tracer& instance();

    /** Append @p event to the calling thread's buffer (lock-free). */
    void record(TraceEvent event);

    /**
     * Render every buffered event as a Chrome trace-event JSON
     * document.  Quiescent points only (no concurrent record()).
     */
    std::string toChromeJson() const;

    /** Drop all buffered events (quiescent points only). */
    void clear();

    /** Buffered events across all threads (quiescent points only). */
    size_t eventCount() const;

    /** Events dropped after a thread buffer hit its cap. */
    uint64_t droppedCount() const;

 private:
    /** Cap per thread buffer; overflow increments `dropped` instead. */
    static constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

    struct ThreadBuffer {
        uint32_t tid = 0;
        std::vector<TraceEvent> events;
        uint64_t dropped = 0;
    };

    ThreadBuffer& localBuffer();

 public:
    /** Stable trace id of the calling thread (registers its buffer). */
    uint32_t localTid() { return localBuffer().tid; }

 private:
    mutable std::mutex mutex_;  ///< guards buffers_ registration/export
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/**
 * A bounded, lock-free collector for the spans of *one* request.
 *
 * The server installs a sink on the lane thread before executing a
 * request (and the thread pool forwards it to workers for the job's
 * duration), so every span closed while the request runs is copied here
 * in addition to the global Tracer.  Writers claim a slot with one
 * relaxed fetch_add; a claim past the capacity only bumps `dropped`.
 * take() must run after the request quiesces (lane-side, after the
 * pool job joined) -- the join supplies the happens-before edge for
 * the plain slot writes.
 */
class RequestSink {
 public:
    struct Entry {
        TraceEvent event;
        uint32_t tid = 0;
    };

    explicit RequestSink(size_t capacity) : slots_(capacity) {}

    /** Copy @p event into the next free slot (lock-free, wait-free). */
    void
    record(const TraceEvent& event, uint32_t tid)
    {
        const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= slots_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        slots_[i].event = event;
        slots_[i].tid = tid;
    }

    /** Drain recorded entries sorted by start time (quiescent only). */
    std::vector<Entry> take();

    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

 private:
    std::vector<Entry> slots_;
    std::atomic<size_t> next_{0};
    std::atomic<uint64_t> dropped_{0};
};

namespace detail {
extern thread_local RequestSink* t_requestSink;
}  // namespace detail

/** The calling thread's request sink, or null when none is installed. */
inline RequestSink*
threadRequestSink()
{
    return detail::t_requestSink;
}

/** Install (or clear, with nullptr) the calling thread's request sink. */
inline void
setThreadRequestSink(RequestSink* sink)
{
    detail::t_requestSink = sink;
}

/** RAII install/restore of the calling thread's request sink. */
class RequestSinkScope {
 public:
    explicit RequestSinkScope(RequestSink* sink)
        : previous_(detail::t_requestSink)
    {
        detail::t_requestSink = sink;
    }
    ~RequestSinkScope() { detail::t_requestSink = previous_; }

    RequestSinkScope(const RequestSinkScope&) = delete;
    RequestSinkScope& operator=(const RequestSinkScope&) = delete;

 private:
    RequestSink* previous_;
};

/**
 * RAII span: records one TraceEvent covering its scope.  Inert (and
 * branch-cheap) when telemetry is disabled at construction; a span that
 * straddles a disable still records, which keeps export consistent.
 */
class Span {
 public:
    explicit Span(const char* name, const char* cat = "isamore")
    {
        if (!enabled()) {
            return;
        }
        name_ = name;
        cat_ = cat;
        start_ = nowNs();
    }

    /** @p args is the inside of the Chrome "args" object; build it only
     *  when enabled() (see TELEM_SPAN_ARGS). */
    Span(const char* name, const char* cat, std::string args)
    {
        if (!enabled()) {
            return;
        }
        name_ = name;
        cat_ = cat;
        args_ = std::move(args);
        start_ = nowNs();
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    ~Span()
    {
        if (name_ == nullptr) {
            return;
        }
        TraceEvent event;
        event.name = name_;
        event.cat = cat_;
        event.startNs = start_;
        event.durNs = nowNs() - start_;
        event.args = std::move(args_);
        if (RequestSink* sink = detail::t_requestSink) {
            sink->record(event, Tracer::instance().localTid());
        }
        Tracer::instance().record(std::move(event));
    }

 private:
    const char* name_ = nullptr;  ///< null = inactive
    const char* cat_ = nullptr;
    std::string args_;
    uint64_t start_ = 0;
};

/** Monotone counter; add() is gated on enabled() internally. */
class Counter {
 public:
    void
    add(uint64_t n = 1)
    {
        if (enabled()) {
            value_.fetch_add(n, std::memory_order_relaxed);
        }
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins gauge; set unconditionally (export-time wiring). */
class Gauge {
 public:
    void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
    std::atomic<int64_t> value_{0};
};

/** Power-of-two-bucket histogram of uint64 samples. */
class Histogram {
 public:
    /** Bucket i counts samples in [2^(i-1), 2^i); bucket 0 counts 0. */
    static constexpr size_t kBuckets = 65;

    void
    observe(uint64_t v)
    {
        if (!enabled()) {
            return;
        }
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    static size_t bucketOf(uint64_t v);
    uint64_t bucket(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/**
 * The process-wide metrics registry.  Lookup is mutex-guarded
 * find-or-create; returned references stay valid for the process
 * lifetime, so hot paths resolve once and keep the pointer.
 */
class Registry {
 public:
    static Registry& instance();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /**
     * Append one record (a complete JSON object, e.g. "{\"iter\": 1}")
     * to the named ordered stream.  Cold paths only (takes the mutex).
     */
    void appendRecord(const std::string& stream, std::string json);

    /**
     * Render the registry as one JSON document with counters, gauges,
     * histograms and records in dot-nested, key-sorted form.  With
     * @p compact the document is a single line (no indentation), fit
     * for embedding inside a JSON-lines response.
     */
    std::string toJson(bool compact = false) const;

    /**
     * Render counters, gauges, and histograms as Prometheus text
     * exposition (one `# TYPE` line per family; dots become
     * underscores under an `isamore_` prefix; the optional
     * `{label=value}` name suffix becomes Prometheus labels;
     * histograms export cumulative `_bucket{le="..."}` series plus
     * `_sum`/`_count`).  Record streams are JSON-only and skipped.
     */
    std::string toPrometheus() const;

    /** Drop every metric and record (tests / between runs). */
    void reset();

 private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::vector<std::string>> records_;
};

/** Escape @p text for use inside a JSON string literal (record/args
 *  emitters building payloads by hand). */
std::string jsonEscape(const std::string& text);

/** Write Tracer JSON to @p path; false (with errno intact) on failure. */
bool writeChromeTrace(const std::string& path);

/** Write Registry JSON to @p path; false on failure. */
bool writeMetrics(const std::string& path);

}  // namespace telemetry
}  // namespace isamore

// Macro plumbing: a uniquely named RAII span per call site.
#define ISAMORE_TELEM_CAT2(a, b) a##b
#define ISAMORE_TELEM_CAT(a, b) ISAMORE_TELEM_CAT2(a, b)

/** Open an RAII span for the rest of the scope: TELEM_SPAN(name[, cat]). */
#define TELEM_SPAN(...) \
    ::isamore::telemetry::Span ISAMORE_TELEM_CAT(telemSpan_, \
                                                 __LINE__)(__VA_ARGS__)

/**
 * Span with dynamic Chrome args: the args expression (the inside of a
 * JSON object, e.g. `"\"iter\": " + std::to_string(i)`) is evaluated
 * only when telemetry is enabled, keeping the disabled cost at the
 * branch.
 */
#define TELEM_SPAN_ARGS(name, cat, argsExpr) \
    ::isamore::telemetry::Span ISAMORE_TELEM_CAT(telemSpan_, __LINE__)( \
        (name), (cat), \
        ::isamore::telemetry::enabled() ? (argsExpr) : std::string())
