#include "support/reclaim.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace isamore {
namespace reclaim {
namespace {

/**
 * Per-thread participation record.  Owned by the domain (never freed
 * while the process lives) so a scan can race a thread's exit: an
 * exiting thread parks its record at kOffline, which scans ignore.
 */
struct Participant {
    /** Last global epoch observed at a quiescent point; kOffline when
     *  the thread has exited (or never registered). */
    std::atomic<uint64_t> epoch{0};
    /** ThreadScope nesting depth + implicit registration; bookkeeping
     *  only, touched by the owning thread. */
    int nesting = 0;
};

constexpr uint64_t kOffline = ~uint64_t{0};

struct LimboEntry {
    void* object;
    void (*deleter)(void*);
    uint64_t epoch;  ///< global epoch at retire time
};

/**
 * The process-wide reclamation domain.  A leaked singleton: thread_local
 * destructors of late-dying threads may run after main() returns, and
 * they must still find the domain alive.
 */
struct Domain {
    std::atomic<uint64_t> globalEpoch{2};  // >= 2 so epoch-2 never wraps
    std::atomic<size_t> deferred{0};
    std::atomic<uint64_t> reclaimed{0};

    std::mutex mutex;  // guards participants + limbo
    std::vector<Participant*> participants;
    std::vector<LimboEntry> limbo;
};

Domain&
domain()
{
    static Domain* d = new Domain();
    return *d;
}

/** The calling thread's record; created on first use, parked offline at
 *  thread exit. */
struct LocalHandle {
    Participant* participant = nullptr;

    Participant&
    get()
    {
        if (participant == nullptr) {
            participant = new Participant();
            Domain& d = domain();
            participant->epoch.store(
                d.globalEpoch.load(std::memory_order_acquire),
                std::memory_order_release);
            std::lock_guard<std::mutex> lock(d.mutex);
            d.participants.push_back(participant);
        }
        return *participant;
    }

    ~LocalHandle()
    {
        if (participant != nullptr) {
            // Park, don't free: a concurrent scan may hold the pointer.
            // The record stays in the registry and is skipped as offline.
            participant->epoch.store(kOffline, std::memory_order_release);
        }
    }
};

thread_local LocalHandle t_handle;

/**
 * Advance the epoch when every online participant has caught up, and
 * free limbo entries whose grace period (two full epochs) has elapsed.
 * @return objects freed.
 */
size_t
advanceAndReclaim()
{
    Domain& d = domain();
    std::vector<LimboEntry> expired;
    {
        std::lock_guard<std::mutex> lock(d.mutex);
        const uint64_t global =
            d.globalEpoch.load(std::memory_order_acquire);
        uint64_t minEpoch = global;
        for (Participant* p : d.participants) {
            const uint64_t seen = p->epoch.load(std::memory_order_acquire);
            if (seen == kOffline) {
                continue;
            }
            minEpoch = seen < minEpoch ? seen : minEpoch;
        }
        if (minEpoch == global) {
            // Everyone online has quiesced in the current epoch: open
            // the next one.  (Monotone; no CAS needed under the lock.)
            d.globalEpoch.store(global + 1, std::memory_order_release);
        }
        // An entry retired in epoch E is safe once minEpoch >= E + 2:
        // every participant then quiesced after the epoch that was
        // current when the retire could still have had readers.
        size_t kept = 0;
        for (LimboEntry& entry : d.limbo) {
            if (entry.epoch + 2 <= minEpoch) {
                expired.push_back(entry);
            } else {
                d.limbo[kept++] = entry;
            }
        }
        d.limbo.resize(kept);
    }
    // Run deleters outside the lock: a deleter may recursively retire
    // (e.g. a class whose nodes own further retired storage).
    for (const LimboEntry& entry : expired) {
        entry.deleter(entry.object);
    }
    if (!expired.empty()) {
        d.deferred.fetch_sub(expired.size(), std::memory_order_relaxed);
        d.reclaimed.fetch_add(expired.size(), std::memory_order_relaxed);
    }
    return expired.size();
}

}  // namespace

ThreadScope::ThreadScope()
{
    Participant& p = t_handle.get();
    if (p.nesting++ == 0) {
        p.epoch.store(domain().globalEpoch.load(std::memory_order_acquire),
                      std::memory_order_release);
    }
}

ThreadScope::~ThreadScope()
{
    Participant& p = t_handle.get();
    --p.nesting;
    // The record stays online until thread exit; refresh its epoch so a
    // finished scope never pins the grace period at the epoch it entered
    // with.  quiescent() hooks keep long-lived threads advancing.
    p.epoch.store(domain().globalEpoch.load(std::memory_order_acquire),
                  std::memory_order_release);
}

void
quiescent()
{
    Participant& p = t_handle.get();
    p.epoch.store(domain().globalEpoch.load(std::memory_order_acquire),
                  std::memory_order_release);
    // Amortize the registry scan: the stripe counter is thread-local,
    // so every thread independently pays one scan per 16 calls.
    thread_local unsigned counter = 0;
    if ((++counter & 15u) == 0 &&
        domain().deferred.load(std::memory_order_relaxed) != 0) {
        advanceAndReclaim();
    }
}

void
retire(void* object, void (*deleter)(void*))
{
    Domain& d = domain();
    const uint64_t epoch = d.globalEpoch.load(std::memory_order_acquire);
    {
        std::lock_guard<std::mutex> lock(d.mutex);
        d.limbo.push_back(LimboEntry{object, deleter, epoch});
    }
    d.deferred.fetch_add(1, std::memory_order_relaxed);
}

size_t
tryReclaim()
{
    if (domain().deferred.load(std::memory_order_relaxed) == 0) {
        return 0;
    }
    return advanceAndReclaim();
}

size_t
drainAllUnsafe()
{
    Domain& d = domain();
    std::vector<LimboEntry> all;
    {
        std::lock_guard<std::mutex> lock(d.mutex);
        all.swap(d.limbo);
    }
    for (const LimboEntry& entry : all) {
        entry.deleter(entry.object);
    }
    if (!all.empty()) {
        d.deferred.fetch_sub(all.size(), std::memory_order_relaxed);
        d.reclaimed.fetch_add(all.size(), std::memory_order_relaxed);
    }
    return all.size();
}

size_t
deferredCount()
{
    return domain().deferred.load(std::memory_order_relaxed);
}

uint64_t
reclaimedCount()
{
    return domain().reclaimed.load(std::memory_order_relaxed);
}

size_t
participantCount()
{
    Domain& d = domain();
    std::lock_guard<std::mutex> lock(d.mutex);
    size_t online = 0;
    for (Participant* p : d.participants) {
        if (p->epoch.load(std::memory_order_acquire) != kOffline) {
            ++online;
        }
    }
    return online;
}

}  // namespace reclaim
}  // namespace isamore
