/**
 * @file
 * Interned strings.
 *
 * Symbols give O(1) comparison and hashing for names that recur throughout
 * the system (function names, rule names, pattern names).  The intern table
 * is process-global and append-only.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace isamore {

/** A handle to an interned string; trivially copyable, O(1) compare. */
class Symbol {
 public:
    /** The empty symbol ("" interned at id 0). */
    Symbol() = default;

    /** Intern @p text (or reuse its existing id). */
    explicit Symbol(std::string_view text);

    /** The interned text. Valid for the process lifetime. */
    const std::string& str() const;

    uint32_t id() const { return id_; }

    bool operator==(const Symbol& other) const { return id_ == other.id_; }
    bool operator!=(const Symbol& other) const { return id_ != other.id_; }
    bool operator<(const Symbol& other) const { return id_ < other.id_; }

 private:
    uint32_t id_ = 0;
};

}  // namespace isamore

template <>
struct std::hash<isamore::Symbol> {
    size_t
    operator()(const isamore::Symbol& s) const noexcept
    {
        return s.id();
    }
};
