/**
 * @file
 * Quiescent-state-based epoch reclamation (QSBR) for shared structures
 * mutated concurrently from pool lanes (DESIGN.md "Concurrent e-graph").
 *
 * The problem: a thread-safe EGraph::merge() unlinks the losing class's
 * storage while other lanes may still be walking it through find() /
 * lookup().  Freeing it immediately would hand those readers a dangling
 * pointer; locking every read would serialize the hot paths.  Instead,
 * retired objects park on an epoch-tagged limbo list and are freed only
 * after every participating thread has passed a *quiescent point* (a
 * moment at which it provably holds no references into the shared
 * structure) in a later epoch — the xenium-style quiescent-state
 * reclamation scheme, stripped to what the e-graph needs.
 *
 * Protocol:
 *  - every thread that touches a concurrently-mutated structure is a
 *    *participant*: pool lanes register automatically (the pool calls
 *    quiescent() at task boundaries, which self-registers), other
 *    threads hold a reclaim::ThreadScope;
 *  - quiescent() declares "this thread holds no shared references right
 *    now"; the pool invokes it between tasks, EGraph::rebuild() invokes
 *    it for the (serial) caller, the server lane loop invokes it between
 *    requests;
 *  - retire() parks an object tagged with the current global epoch; an
 *    object retired in epoch E is freed once every participant has
 *    quiesced in an epoch >= E + 2 (the classic two-epoch grace period:
 *    one bump may be concurrent with the retire itself).
 *
 * A participant that never quiesces again pins the limbo list (QSBR's
 * standard caveat); the hooks above make every long-lived thread in this
 * codebase quiesce at natural boundaries.  Threads deregister on exit,
 * so a dead lane never blocks reclamation.
 *
 * All functions are safe to call from any thread at any time; none
 * allocate while holding another subsystem's lock.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace isamore {
namespace reclaim {

/**
 * Register the calling thread as a participant for its lifetime (RAII).
 * Registration is idempotent per thread; nesting is counted.  Pool lanes
 * do not need an explicit scope — quiescent() self-registers.
 */
class ThreadScope {
 public:
    ThreadScope();
    ~ThreadScope();
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;
};

/**
 * Declare a quiescent point: the calling thread holds no references into
 * any epoch-protected structure.  Self-registers the thread on first
 * use.  Cheap (two relaxed atomic ops); every ~16th call additionally
 * tries to advance the global epoch and free expired limbo entries.
 */
void quiescent();

/**
 * Park @p object for deferred destruction; @p deleter runs once the
 * grace period elapses.  The object must already be unreachable for new
 * readers (e.g. its slot was overwritten before the retire).
 */
void retire(void* object, void (*deleter)(void*));

/** Typed convenience: retire with `delete static_cast<T*>(p)`. */
template <typename T>
void
retireObject(T* object)
{
    retire(object, [](void* p) { delete static_cast<T*>(p); });
}

/**
 * Try to advance the epoch and free expired entries now.  Called
 * opportunistically by quiescent(); exposed for explicit drain points
 * (EGraph::rebuild, tests).  @return the number of objects freed.
 */
size_t tryReclaim();

/**
 * Free every parked object regardless of grace periods.  Only valid
 * when the caller can prove no participant holds references (process
 * teardown, test fixtures, a fully joined pool).  @return objects freed.
 */
size_t drainAllUnsafe();

/** Objects currently parked awaiting a grace period (telemetry gauge). */
size_t deferredCount();

/** Cumulative objects freed since process start (telemetry/tests). */
uint64_t reclaimedCount();

/** Number of registered participants (tests). */
size_t participantCount();

}  // namespace reclaim
}  // namespace isamore
