#include "support/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "support/check.hpp"
#include "support/reclaim.hpp"
#include "support/telemetry.hpp"

namespace isamore {

size_t
ThreadPool::defaultThreadCount()
{
    if (const char* env = std::getenv("ISAMORE_THREADS");
        env != nullptr && *env != '\0') {
        char* end = nullptr;
        const unsigned long value = std::strtoul(env, &end, 10);
        if (end != nullptr && *end == '\0' && value >= 1) {
            return static_cast<size_t>(value);
        }
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : static_cast<size_t>(hardware);
}

ThreadPool::ThreadPool(size_t threads)
    : lanes_(threads == 0 ? defaultThreadCount() : threads)
{
    if (lanes_ <= 1) {
        lanes_ = 1;
        counters_ = std::make_unique<LaneCounters[]>(1);
        return;
    }
    counters_ = std::make_unique<LaneCounters[]>(lanes_);
    deques_ = std::make_unique<Deque[]>(lanes_);
    workers_.reserve(lanes_ - 1);
    for (size_t lane = 1; lane < lanes_; ++lane) {
        workers_.emplace_back([this, lane] { workerMain(lane); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

bool
ThreadPool::popOwn(Deque& deque, size_t& out)
{
    // Owner end (bottom).  Slots are preloaded and read-only during the
    // job, so only the top/bottom indices need synchronization.
    const int64_t b = deque.bottom.load(std::memory_order_seq_cst) - 1;
    deque.bottom.store(b, std::memory_order_seq_cst);
    int64_t t = deque.top.load(std::memory_order_seq_cst);
    if (t > b) {
        // Empty: restore and fail.
        deque.bottom.store(b + 1, std::memory_order_seq_cst);
        return false;
    }
    out = deque.items[static_cast<size_t>(b)];
    if (t == b) {
        // Last item: race the thieves for it.
        const bool won = deque.top.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst);
        deque.bottom.store(b + 1, std::memory_order_seq_cst);
        return won;
    }
    return true;
}

bool
ThreadPool::steal(Deque& deque, size_t& out)
{
    int64_t t = deque.top.load(std::memory_order_seq_cst);
    const int64_t b = deque.bottom.load(std::memory_order_seq_cst);
    if (t >= b) {
        return false;
    }
    out = deque.items[static_cast<size_t>(t)];
    return deque.top.compare_exchange_strong(t, t + 1,
                                             std::memory_order_seq_cst);
}

void
ThreadPool::execute(size_t index)
{
    try {
        (*body_)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!error_) {
            error_ = std::current_exception();
        }
    }
}

void
ThreadPool::runLane(size_t lane)
{
    size_t index;
    LaneCounters& counters = counters_[lane];
    while (true) {
        // Task boundaries are the pool's quiescent points: a lane holds
        // no references into epoch-protected structures between bodies,
        // which is what lets the e-graph retire storage mid-job and
        // reclaim it once every lane has moved on (see support/reclaim).
        reclaim::quiescent();
        if (popOwn(deques_[lane], index)) {
            counters.tasks.fetch_add(1, std::memory_order_relaxed);
            execute(index);
            continue;
        }
        // Own deque drained: sweep the other lanes for leftovers.  No new
        // tasks appear mid-job and owners always drain their own deques,
        // so bailing out of the sweep (even on a lost steal race) cannot
        // strand work.
        bool stole = false;
        for (size_t k = 1; k < lanes_; ++k) {
            if (steal(deques_[(lane + k) % lanes_], index)) {
                counters.tasks.fetch_add(1, std::memory_order_relaxed);
                counters.steals.fetch_add(1, std::memory_order_relaxed);
                execute(index);
                stole = true;
                break;
            }
        }
        if (!stole) {
            return;
        }
    }
}

void
ThreadPool::workerMain(size_t lane)
{
    uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            wakeCv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
            if (stop_) {
                return;
            }
            seen = epoch_;
        }
        // Adopt the submitter's request sink for this job (published
        // before the epoch bump, so the wait above orders the read), and
        // drop it before joining: a worker must never hold a sink past
        // the job that installed it.
        telemetry::setThreadRequestSink(jobSink_);
        runLane(lane);
        telemetry::setThreadRequestSink(nullptr);
        // Check back in.  The submitter returns only after every worker
        // joined the epoch, so no stale thief can still be sweeping the
        // deques when the next job is preloaded.
        {
            std::lock_guard<std::mutex> lock(doneMutex_);
            ++joined_;
        }
        doneCv_.notify_one();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)>& body)
{
    if (n == 0) {
        return;
    }
    if (lanes_ <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i) {
            body(i);
        }
        counters_[0].tasks.fetch_add(n, std::memory_order_relaxed);
        reclaim::quiescent();
        return;
    }

    std::lock_guard<std::mutex> submit(submitMutex_);
    ISAMORE_CHECK_MSG(!inParallelFor_,
                      "nested ThreadPool::parallelFor would deadlock");
    inParallelFor_ = true;

    // Preload the index range block-wise: lane L starts on block L and
    // steals from its neighbours once it drains.
    for (size_t lane = 0; lane < lanes_; ++lane) {
        Deque& deque = deques_[lane];
        const size_t begin = lane * n / lanes_;
        const size_t end = (lane + 1) * n / lanes_;
        deque.items.resize(std::max<size_t>(1, end - begin));
        for (size_t i = begin; i < end; ++i) {
            deque.items[i - begin] = i;
        }
        deque.top.store(0, std::memory_order_seq_cst);
        deque.bottom.store(static_cast<int64_t>(end - begin),
                           std::memory_order_seq_cst);
    }
    body_ = &body;
    jobSink_ = telemetry::threadRequestSink();
    error_ = nullptr;
    joined_ = 0;

    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        ++epoch_;
    }
    wakeCv_.notify_all();

    // The submitting thread is lane 0; afterwards wait for every worker
    // to finish the epoch (all work is claimed and executed by then).
    runLane(0);
    {
        std::unique_lock<std::mutex> lock(doneMutex_);
        doneCv_.wait(lock, [&] { return joined_ == lanes_ - 1; });
    }
    body_ = nullptr;
    jobSink_ = nullptr;
    inParallelFor_ = false;
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

PoolStats
ThreadPool::stats() const
{
    PoolStats out;
    out.lanes = lanes_;
    out.perLaneTasks.reserve(lanes_);
    out.perLaneSteals.reserve(lanes_);
    for (size_t lane = 0; lane < lanes_; ++lane) {
        const uint64_t tasks =
            counters_[lane].tasks.load(std::memory_order_relaxed);
        const uint64_t steals =
            counters_[lane].steals.load(std::memory_order_relaxed);
        out.perLaneTasks.push_back(tasks);
        out.perLaneSteals.push_back(steals);
        out.tasks += tasks;
        out.steals += steals;
    }
    return out;
}

namespace {

std::mutex g_poolMutex;
std::unique_ptr<ThreadPool> g_pool;
size_t g_requestedThreads = 0;  // 0 = default

}  // namespace

ThreadPool&
globalPool()
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    const size_t want = g_requestedThreads == 0
                            ? ThreadPool::defaultThreadCount()
                            : g_requestedThreads;
    if (!g_pool || g_pool->threadCount() != want) {
        g_pool.reset();  // join the old workers before respawning
        g_pool = std::make_unique<ThreadPool>(want);
    }
    return *g_pool;
}

void
setGlobalThreads(size_t threads)
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    g_requestedThreads = threads;
}

size_t
globalThreadCount()
{
    std::lock_guard<std::mutex> lock(g_poolMutex);
    if (g_requestedThreads != 0) {
        return g_requestedThreads;
    }
    return ThreadPool::defaultThreadCount();
}

}  // namespace isamore
