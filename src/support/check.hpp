/**
 * @file
 * Invariant-checking macros used throughout the ISAMORE codebase.
 *
 * ISAMORE_CHECK is for internal invariants (a violation is a bug in this
 * library); ISAMORE_USER_CHECK is for user-facing misuse of the public API
 * (bad configuration, malformed input).  Both throw so that tests can
 * observe failures.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace isamore {

/** Error thrown when an internal invariant is violated (a library bug). */
class InternalError : public std::logic_error {
 public:
    explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/** Error thrown when the public API is misused by the caller. */
class UserError : public std::runtime_error {
 public:
    explicit UserError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void
throwInternal(const char* cond, const char* file, int line,
              const std::string& msg)
{
    std::ostringstream os;
    os << "internal check failed: " << cond << " at " << file << ":" << line;
    if (!msg.empty()) {
        os << " -- " << msg;
    }
    throw InternalError(os.str());
}

[[noreturn]] inline void
throwUser(const std::string& msg)
{
    throw UserError(msg);
}

}  // namespace detail
}  // namespace isamore

#define ISAMORE_CHECK(cond)                                                  \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::isamore::detail::throwInternal(#cond, __FILE__, __LINE__, ""); \
        }                                                                    \
    } while (false)

#define ISAMORE_CHECK_MSG(cond, msg)                                          \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::isamore::detail::throwInternal(#cond, __FILE__, __LINE__, msg); \
        }                                                                     \
    } while (false)

#define ISAMORE_USER_CHECK(cond, msg)          \
    do {                                       \
        if (!(cond)) {                         \
            ::isamore::detail::throwUser(msg); \
        }                                      \
    } while (false)
