/**
 * @file
 * Mergeable latency digests with deterministic percentiles.
 *
 * A LatencyDigest reuses the telemetry Histogram's power-of-two bucket
 * scheme (Histogram::bucketOf) but is a plain, non-atomic value type:
 * the server keeps one digest per (lane, stage, op, workload) and each
 * lane mutates only its own, so observation takes no shared lock and
 * never stalls another lane.  Snapshots merge lane-local digests into a
 * global one by summing buckets.
 *
 * Determinism contract: quantile(q) is computed from bucket counts only
 * -- the rank'th sample's bucket lower bound -- so the reported
 * percentile depends solely on the multiset of observed samples, not on
 * which lane observed which sample or in what order digests merged.
 * That is what makes "p99 per op" stable across 1/2/4-lane runs of the
 * same request mix (pinned by tests/support/latency_test.cpp).
 *
 * The bucket lower bound is a floor of the true percentile with at most
 * 2x relative error -- the right trade for an SLO signal that must be
 * cheap, mergeable, and bit-stable.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/telemetry.hpp"

namespace isamore {

class LatencyDigest {
 public:
    static constexpr size_t kBuckets = telemetry::Histogram::kBuckets;

    /** Record one sample (any unit; the server records microseconds). */
    void observe(uint64_t sample);

    /** Fold @p other into this digest (bucket-wise sums). */
    void merge(const LatencyDigest& other);

    /**
     * The bucket lower bound of the sample at rank ceil(q * count),
     * q in (0, 1]; 0 when the digest is empty.
     */
    uint64_t quantile(double q) const;

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t max() const { return max_; }
    /** Exact-integer mean floor; 0 when empty. */
    uint64_t mean() const { return count_ == 0 ? 0 : sum_ / count_; }

 private:
    uint64_t buckets_[kBuckets] = {};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t max_ = 0;
};

}  // namespace isamore
