#include "support/fault.hpp"

#include <cstdlib>
#include <new>

#include "support/check.hpp"

namespace isamore {
namespace fault {
namespace {

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string& text)
{
    size_t begin = text.find_first_not_of(" \t\n\r");
    if (begin == std::string::npos) {
        return "";
    }
    size_t end = text.find_last_not_of(" \t\n\r");
    return text.substr(begin, end - begin + 1);
}

FaultKind
parseKind(const std::string& text)
{
    if (text == "trip" || text == "timeout") {
        return FaultKind::Trip;
    }
    if (text == "alloc") {
        return FaultKind::BadAlloc;
    }
    if (text == "invariant") {
        return FaultKind::Invariant;
    }
    ISAMORE_USER_CHECK(false, "unknown fault kind '" + text +
                                  "' (expected trip|timeout|alloc|"
                                  "invariant)");
    return FaultKind::Trip;  // unreachable
}

/** Parse one `site=kind[@hit[+]]` clause. */
FaultArm
parseArm(const std::string& clause)
{
    const size_t eq = clause.find('=');
    ISAMORE_USER_CHECK(eq != std::string::npos && eq > 0,
                       "fault clause '" + clause +
                           "' is not of the form site=kind[@hit[+]]");
    FaultArm arm;
    arm.site = trim(clause.substr(0, eq));
    std::string rest = trim(clause.substr(eq + 1));
    ISAMORE_USER_CHECK(!arm.site.empty() && !rest.empty(),
                       "fault clause '" + clause +
                           "' is missing a site or kind");

    const size_t at = rest.find('@');
    if (at != std::string::npos) {
        std::string hit = trim(rest.substr(at + 1));
        rest = trim(rest.substr(0, at));
        if (!hit.empty() && hit.back() == '+') {
            arm.repeat = true;
            hit.pop_back();
        }
        char* end = nullptr;
        const unsigned long long value =
            std::strtoull(hit.c_str(), &end, 10);
        ISAMORE_USER_CHECK(!hit.empty() && end != nullptr && *end == '\0' &&
                               value >= 1,
                           "fault clause '" + clause +
                               "' has a bad hit index (want @N or @N+ "
                               "with N >= 1)");
        arm.hit = value;
    }
    arm.kind = parseKind(rest);
    return arm;
}

}  // namespace

Registry::Registry()
{
    const char* env = std::getenv("ISAMORE_FAULTS");
    if (env != nullptr && *env != '\0') {
        configure(env);
    }
}

Registry&
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::configure(const std::string& spec)
{
    size_t begin = 0;
    while (begin <= spec.size()) {
        size_t end = spec.find(';', begin);
        if (end == std::string::npos) {
            end = spec.size();
        }
        const std::string clause = trim(spec.substr(begin, end - begin));
        if (!clause.empty()) {
            arm(parseArm(clause));
        }
        begin = end + 1;
    }
}

void
Registry::arm(FaultArm arm)
{
    std::lock_guard<std::mutex> lock(mutex_);
    arms_.push_back(std::move(arm));
    enabled_.store(true, std::memory_order_relaxed);
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_.store(false, std::memory_order_relaxed);
    fired_.store(0, std::memory_order_relaxed);
    arms_.clear();
    sites_.clear();
}

uint64_t
Registry::hitCount(const std::string& site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    return it == sites_.end()
               ? 0
               : it->second.hits.load(std::memory_order_relaxed);
}

std::vector<FaultArm>
Registry::arms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return arms_;
}

Scope::Scope(const std::string& spec)
{
    Registry& registry = Registry::instance();
    saved_ = registry.arms();
    registry.reset();
    try {
        registry.configure(spec);
    } catch (...) {
        // A malformed spec must not leave the registry disarmed when the
        // process had faults armed before the scope.
        for (FaultArm& arm : saved_) {
            registry.arm(std::move(arm));
        }
        throw;
    }
}

Scope::~Scope()
{
    Registry& registry = Registry::instance();
    registry.reset();
    for (FaultArm& arm : saved_) {
        registry.arm(std::move(arm));
    }
}

bool
Registry::shouldTrip(const char* site)
{
    // Taken only when a fault is armed, so the lock is off the production
    // fast path; it keeps the visit count and the arm scan one atomic
    // step, which is what makes `@N` fire on exactly one visit even when
    // several workers poll the same site concurrently.
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t hits =
        sites_[site].hits.fetch_add(1, std::memory_order_relaxed) + 1;
    for (const FaultArm& arm : arms_) {
        if (arm.site != site) {
            continue;
        }
        if (arm.repeat ? hits < arm.hit : hits != arm.hit) {
            continue;
        }
        fired_.fetch_add(1, std::memory_order_relaxed);
        switch (arm.kind) {
          case FaultKind::Trip:
            return true;
          case FaultKind::BadAlloc:
            throw std::bad_alloc();
          case FaultKind::Invariant:
            throw InternalError(std::string("injected fault at site ") +
                                site);
        }
    }
    return false;
}

}  // namespace fault
}  // namespace isamore
