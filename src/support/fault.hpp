/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * Instrumented code declares *named sites* -- `fault::tripped("au.pair")`
 * -- at the exact points where a resource trip or failure is possible.
 * Tests (or an operator, via the `ISAMORE_FAULTS` environment variable or
 * the CLI's `--inject` flag) arm faults against those sites:
 *
 *     site=kind[@hit[+]] [; site=kind[@hit[+]] ...]
 *
 * where `kind` is one of
 *   - `trip`   (alias `timeout`): tripped() returns true, which the site
 *              interprets as its local budget expiring (a soft fault);
 *   - `alloc`:     tripped() throws std::bad_alloc;
 *   - `invariant`: tripped() throws InternalError;
 * and `@hit` (1-based, default 1) selects the exact site visit on which
 * the fault fires -- `@3` fires on the third visit only, `@3+` on the
 * third and every later visit.  Hit counters are per site and global to
 * the process, so a given invocation trips at exactly one deterministic
 * point regardless of timing.
 *
 * When nothing is armed, a site check is a single relaxed bool load; the
 * registry is meant to stay compiled into production builds.
 *
 * Known sites: eqsat.search, eqsat.apply, eqsat.nodes, au.sweep, au.pair,
 * au.candidate, select.round, select.refine, rii.phase, profile.run,
 * backend.emit.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace isamore {
namespace fault {

/** What an armed fault does when it fires. */
enum class FaultKind { Trip, BadAlloc, Invariant };

/** One armed fault. */
struct FaultArm {
    std::string site;
    FaultKind kind = FaultKind::Trip;
    uint64_t hit = 1;     ///< 1-based site visit on which the fault fires
    bool repeat = false;  ///< fire on every visit >= hit, not just one
};

/**
 * Process-wide fault registry.  Thread-safe: sites are visited from pool
 * workers (the parallel AU sweep and EqSat match fan-out poll sites
 * concurrently), so the site map is mutex-guarded, hit counters are
 * atomic, and the enabled flag read by the fast path is a relaxed load.
 * Hit indices stay deterministic for serial visit orders; concurrent
 * visits to the *same* site race only for which visit gets which index,
 * never for whether exactly one visit fires a `@N` fault.
 */
class Registry {
 public:
    /** The singleton; first use arms faults from $ISAMORE_FAULTS. */
    static Registry& instance();

    /**
     * Parse @p spec (the grammar above) and arm every fault in it.
     * @throws UserError on malformed input.
     */
    void configure(const std::string& spec);

    /** Arm one fault. */
    void arm(FaultArm arm);

    /** Disarm everything and zero all hit/fired counters. */
    void reset();

    /** Whether any fault is armed (the site-check fast path). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Faults fired since construction or the last reset(). */
    uint64_t
    firedCount() const
    {
        return fired_.load(std::memory_order_relaxed);
    }

    /** Visits recorded for @p site (0 when never visited while armed). */
    uint64_t hitCount(const std::string& site) const;

    /** Snapshot of the currently armed faults (for scoped re-arming). */
    std::vector<FaultArm> arms() const;

    /**
     * Record a visit to @p site and fire any armed fault that matches.
     * Trip faults return true; BadAlloc/Invariant faults throw.
     */
    bool shouldTrip(const char* site);

 private:
    Registry();

    struct SiteState {
        std::atomic<uint64_t> hits{0};
    };

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> fired_{0};
    mutable std::mutex mutex_;  // guards arms_ and the sites_ map itself
    std::vector<FaultArm> arms_;
    std::unordered_map<std::string, SiteState> sites_;
};

/**
 * Scoped fault arming for per-request injection in long-lived processes.
 *
 * The registry is process-global and its `@N` hit counters only count
 * while something is armed, so a daemon serving many requests needs each
 * request's injection to see a *fresh* registry: construction snapshots
 * the currently armed faults, clears the registry (arms, hit counters,
 * fired count) and arms @p spec; destruction clears again and re-arms the
 * snapshot.  `@N` indices are therefore relative to the scope, exactly as
 * they are relative to the process in single-shot CLI runs.
 *
 * Scopes do not nest across threads: the caller must guarantee that no
 * other thread arms faults or depends on armed faults while a Scope is
 * alive (the server runs fault-injected requests under an exclusive
 * isolation lock for exactly this reason; see src/server/serve.cpp).
 */
class Scope {
 public:
    /** @throws UserError when @p spec is malformed (nothing is armed). */
    explicit Scope(const std::string& spec);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

 private:
    std::vector<FaultArm> saved_;
};

/**
 * The site check used by instrumented code.  Returns true when a Trip
 * fault fires at @p site; throws for BadAlloc/Invariant faults; returns
 * false (without even counting the visit) when nothing is armed.
 */
inline bool
tripped(const char* site)
{
    Registry& registry = Registry::instance();
    if (!registry.enabled()) {
        return false;
    }
    return registry.shouldTrip(site);
}

}  // namespace fault
}  // namespace isamore
