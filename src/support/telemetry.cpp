#include "support/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace isamore {
namespace telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void
setEnabled(bool on)
{
#if defined(ISAMORE_NO_TELEMETRY)
    (void)on;
#else
    // Touch the epoch before the first probe can, so timestamps are
    // relative to the moment tracing was first switched on, not to an
    // arbitrary first span.
    nowNs();
    detail::g_enabled.store(on, std::memory_order_relaxed);
#endif
}

uint64_t
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch)
            .count());
}

// ---------------------------------------------------------------- Tracer

Tracer&
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::ThreadBuffer&
Tracer::localBuffer()
{
    // One buffer per recording thread, registered once.  The shared_ptr
    // in buffers_ keeps the events alive after the thread exits (pool
    // workers die on every resize), so a late export still sees them.
    thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
        auto fresh = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(mutex_);
        fresh->tid = static_cast<uint32_t>(buffers_.size());
        buffers_.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void
Tracer::record(TraceEvent event)
{
    ThreadBuffer& buffer = localBuffer();
    if (buffer.events.size() >= kMaxEventsPerThread) {
        ++buffer.dropped;
        return;
    }
    buffer.events.push_back(std::move(event));
}

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Microseconds with three fractional digits, as Chrome "ts" wants. */
void
writeMicros(std::ostream& os, uint64_t ns)
{
    os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
       << static_cast<char>('0' + (ns % 100) / 10)
       << static_cast<char>('0' + ns % 10);
}

}  // namespace

std::string
Tracer::toChromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    for (const auto& buffer : buffers_) {
        if (buffer->events.empty()) {
            continue;
        }
        // One metadata event names the thread so Perfetto's track labels
        // are readable.
        os << (first ? "" : ",\n")
           << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << buffer->tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
              "\"thread-"
           << buffer->tid << "\"}}";
        first = false;
        for (const TraceEvent& event : buffer->events) {
            os << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": "
               << buffer->tid << ", \"name\": \""
               << jsonEscape(event.name) << "\", \"cat\": \""
               << jsonEscape(event.cat == nullptr ? "isamore" : event.cat)
               << "\", \"ts\": ";
            writeMicros(os, event.startNs);
            os << ", \"dur\": ";
            writeMicros(os, event.durNs);
            if (!event.args.empty()) {
                os << ", \"args\": {" << event.args << "}";
            }
            os << "}";
        }
    }
    os << "\n]}\n";
    return os.str();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
        buffer->events.clear();
        buffer->dropped = 0;
    }
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t total = 0;
    for (const auto& buffer : buffers_) {
        total += buffer->events.size();
    }
    return total;
}

uint64_t
Tracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto& buffer : buffers_) {
        total += buffer->dropped;
    }
    return total;
}

// -------------------------------------------------------------- Registry

size_t
Histogram::bucketOf(uint64_t v)
{
    if (v == 0) {
        return 0;
    }
    size_t bits = 0;
    while (v != 0) {
        v >>= 1;
        ++bits;
    }
    return bits;  // v in [2^(bits-1), 2^bits) -> bucket `bits`
}

Registry&
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
    }
    return *slot;
}

void
Registry::appendRecord(const std::string& stream, std::string json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_[stream].push_back(std::move(json));
}

namespace {

/**
 * A sorted name->rendered-value map printed as dot-nested JSON objects:
 * "a.b.c" and "a.b.d{rule=x}" become {"a": {"b": {"c": ..., "d{rule=x}":
 * ...}}}.  The label suffix never splits (no dots inside {...} by
 * construction of our metric names).  Input being a std::map makes every
 * object's keys sorted.
 */
void
writeNested(std::ostream& os,
            const std::map<std::string, std::string>& entries,
            size_t begin, size_t end, size_t depth,
            const std::string& prefix)
{
    // Materialize the [begin, end) slice of entries whose keys start with
    // prefix; group by the next dot-segment.
    auto it = entries.begin();
    std::advance(it, begin);
    std::string indent(2 * (depth + 1), ' ');
    os << "{";
    bool first = true;
    size_t index = begin;
    while (index < end) {
        const std::string& key = it->first;
        const std::string rest = key.substr(prefix.size());
        const size_t brace = rest.find('{');
        size_t dot = rest.find('.');
        if (brace != std::string::npos && dot != std::string::npos &&
            brace < dot) {
            dot = std::string::npos;  // dots inside a label stay put
        }
        os << (first ? "\n" : ",\n") << indent;
        first = false;
        if (dot == std::string::npos) {
            // Leaf at this level.
            os << "\"" << jsonEscape(rest) << "\": " << it->second;
            ++it;
            ++index;
            continue;
        }
        // Subtree: emit one nested object for every key sharing this
        // segment.
        const std::string segment = rest.substr(0, dot);
        const std::string child = prefix + segment + ".";
        size_t span = index;
        auto probe = it;
        while (span < end && probe->first.compare(0, child.size(), child) ==
                                 0) {
            ++probe;
            ++span;
        }
        os << "\"" << jsonEscape(segment) << "\": ";
        writeNested(os, entries, index, span, depth + 1, child);
        it = probe;
        index = span;
    }
    if (!first) {
        os << "\n" << std::string(2 * depth, ' ');
    }
    os << "}";
}

void
writeSection(std::ostream& os, const char* title,
             const std::map<std::string, std::string>& entries, bool last)
{
    os << "  \"" << title << "\": ";
    writeNested(os, entries, 0, entries.size(), 1, "");
    os << (last ? "\n" : ",\n");
}

}  // namespace

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::string> counters;
    for (const auto& [name, counter] : counters_) {
        counters[name] = std::to_string(counter->value());
    }
    std::map<std::string, std::string> gauges;
    for (const auto& [name, gauge] : gauges_) {
        gauges[name] = std::to_string(gauge->value());
    }
    std::map<std::string, std::string> histograms;
    for (const auto& [name, histogram] : histograms_) {
        std::ostringstream value;
        value << "{\"count\": " << histogram->count()
              << ", \"sum\": " << histogram->sum() << ", \"buckets\": [";
        bool first = true;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            const uint64_t n = histogram->bucket(i);
            if (n == 0) {
                continue;
            }
            const uint64_t lo = i == 0 ? 0 : uint64_t{1} << (i - 1);
            value << (first ? "" : ", ") << "[" << lo << ", " << n << "]";
            first = false;
        }
        value << "]}";
        histograms[name] = value.str();
    }
    std::map<std::string, std::string> records;
    for (const auto& [stream, entries] : records_) {
        std::ostringstream value;
        value << "[";
        for (size_t i = 0; i < entries.size(); ++i) {
            value << (i == 0 ? "" : ", ") << entries[i];
        }
        value << "]";
        records[stream] = value.str();
    }

    std::ostringstream os;
    os << "{\n";
    writeSection(os, "counters", counters, false);
    writeSection(os, "gauges", gauges, false);
    writeSection(os, "histograms", histograms, false);
    writeSection(os, "records", records, true);
    os << "}\n";
    return os.str();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    records_.clear();
}

bool
writeChromeTrace(const std::string& path)
{
    std::ofstream out(path);
    if (!out.good()) {
        return false;
    }
    out << Tracer::instance().toChromeJson();
    return out.good();
}

bool
writeMetrics(const std::string& path)
{
    std::ofstream out(path);
    if (!out.good()) {
        return false;
    }
    out << Registry::instance().toJson();
    return out.good();
}

}  // namespace telemetry
}  // namespace isamore
