#include "support/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace isamore {
namespace telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
thread_local RequestSink* t_requestSink = nullptr;
}  // namespace detail

void
setEnabled(bool on)
{
#if defined(ISAMORE_NO_TELEMETRY)
    (void)on;
#else
    // Touch the epoch before the first probe can, so timestamps are
    // relative to the moment tracing was first switched on, not to an
    // arbitrary first span.
    nowNs();
    detail::g_enabled.store(on, std::memory_order_relaxed);
#endif
}

uint64_t
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch)
            .count());
}

// ---------------------------------------------------------------- Tracer

Tracer&
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::ThreadBuffer&
Tracer::localBuffer()
{
    // One buffer per recording thread, registered once.  The shared_ptr
    // in buffers_ keeps the events alive after the thread exits (pool
    // workers die on every resize), so a late export still sees them.
    thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
        auto fresh = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(mutex_);
        fresh->tid = static_cast<uint32_t>(buffers_.size());
        buffers_.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void
Tracer::record(TraceEvent event)
{
    ThreadBuffer& buffer = localBuffer();
    if (buffer.events.size() >= kMaxEventsPerThread) {
        ++buffer.dropped;
        return;
    }
    buffer.events.push_back(std::move(event));
}

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Microseconds with three fractional digits, as Chrome "ts" wants. */
void
writeMicros(std::ostream& os, uint64_t ns)
{
    os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
       << static_cast<char>('0' + (ns % 100) / 10)
       << static_cast<char>('0' + ns % 10);
}

}  // namespace

std::string
Tracer::toChromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    for (const auto& buffer : buffers_) {
        if (buffer->events.empty()) {
            continue;
        }
        // One metadata event names the thread so Perfetto's track labels
        // are readable.
        os << (first ? "" : ",\n")
           << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << buffer->tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
              "\"thread-"
           << buffer->tid << "\"}}";
        first = false;
        for (const TraceEvent& event : buffer->events) {
            os << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": "
               << buffer->tid << ", \"name\": \""
               << jsonEscape(event.name) << "\", \"cat\": \""
               << jsonEscape(event.cat == nullptr ? "isamore" : event.cat)
               << "\", \"ts\": ";
            writeMicros(os, event.startNs);
            os << ", \"dur\": ";
            writeMicros(os, event.durNs);
            if (!event.args.empty()) {
                os << ", \"args\": {" << event.args << "}";
            }
            os << "}";
        }
    }
    os << "\n]}\n";
    return os.str();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
        buffer->events.clear();
        buffer->dropped = 0;
    }
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t total = 0;
    for (const auto& buffer : buffers_) {
        total += buffer->events.size();
    }
    return total;
}

std::vector<RequestSink::Entry>
RequestSink::take()
{
    const size_t claimed = next_.load(std::memory_order_relaxed);
    const size_t used = claimed < slots_.size() ? claimed : slots_.size();
    std::vector<Entry> out(slots_.begin(),
                           slots_.begin() + static_cast<ptrdiff_t>(used));
    std::stable_sort(out.begin(), out.end(),
                     [](const Entry& a, const Entry& b) {
                         return a.event.startNs < b.event.startNs;
                     });
    return out;
}

uint64_t
Tracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto& buffer : buffers_) {
        total += buffer->dropped;
    }
    return total;
}

// -------------------------------------------------------------- Registry

size_t
Histogram::bucketOf(uint64_t v)
{
    if (v == 0) {
        return 0;
    }
    size_t bits = 0;
    while (v != 0) {
        v >>= 1;
        ++bits;
    }
    return bits;  // v in [2^(bits-1), 2^bits) -> bucket `bits`
}

Registry&
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
    }
    return *slot;
}

void
Registry::appendRecord(const std::string& stream, std::string json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_[stream].push_back(std::move(json));
}

namespace {

/**
 * A sorted name->rendered-value map printed as dot-nested JSON objects:
 * "a.b.c" and "a.b.d{rule=x}" become {"a": {"b": {"c": ..., "d{rule=x}":
 * ...}}}.  The label suffix never splits (no dots inside {...} by
 * construction of our metric names).  Input being a std::map makes every
 * object's keys sorted.
 */
void
writeNested(std::ostream& os,
            const std::map<std::string, std::string>& entries,
            size_t begin, size_t end, size_t depth,
            const std::string& prefix, bool pretty)
{
    // Materialize the [begin, end) slice of entries whose keys start with
    // prefix; group by the next dot-segment.
    auto it = entries.begin();
    std::advance(it, begin);
    std::string indent(pretty ? 2 * (depth + 1) : 0, ' ');
    os << "{";
    bool first = true;
    size_t index = begin;
    while (index < end) {
        const std::string& key = it->first;
        const std::string rest = key.substr(prefix.size());
        const size_t brace = rest.find('{');
        size_t dot = rest.find('.');
        if (brace != std::string::npos && dot != std::string::npos &&
            brace < dot) {
            dot = std::string::npos;  // dots inside a label stay put
        }
        os << (first ? (pretty ? "\n" : "") : (pretty ? ",\n" : ", "))
           << indent;
        first = false;
        if (dot == std::string::npos) {
            // Leaf at this level.
            os << "\"" << jsonEscape(rest) << "\": " << it->second;
            ++it;
            ++index;
            continue;
        }
        // Subtree: emit one nested object for every key sharing this
        // segment.
        const std::string segment = rest.substr(0, dot);
        const std::string child = prefix + segment + ".";
        size_t span = index;
        auto probe = it;
        while (span < end && probe->first.compare(0, child.size(), child) ==
                                 0) {
            ++probe;
            ++span;
        }
        os << "\"" << jsonEscape(segment) << "\": ";
        writeNested(os, entries, index, span, depth + 1, child, pretty);
        it = probe;
        index = span;
    }
    if (!first && pretty) {
        os << "\n" << std::string(2 * depth, ' ');
    }
    os << "}";
}

void
writeSection(std::ostream& os, const char* title,
             const std::map<std::string, std::string>& entries, bool last,
             bool pretty)
{
    os << (pretty ? "  " : "") << "\"" << title << "\": ";
    writeNested(os, entries, 0, entries.size(), 1, "", pretty);
    os << (last ? "" : ",") << (pretty ? "\n" : (last ? "" : " "));
}

}  // namespace

std::string
Registry::toJson(bool compact) const
{
    const bool pretty = !compact;
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, std::string> counters;
    for (const auto& [name, counter] : counters_) {
        counters[name] = std::to_string(counter->value());
    }
    std::map<std::string, std::string> gauges;
    for (const auto& [name, gauge] : gauges_) {
        gauges[name] = std::to_string(gauge->value());
    }
    std::map<std::string, std::string> histograms;
    for (const auto& [name, histogram] : histograms_) {
        std::ostringstream value;
        value << "{\"count\": " << histogram->count()
              << ", \"sum\": " << histogram->sum() << ", \"buckets\": [";
        bool first = true;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            const uint64_t n = histogram->bucket(i);
            if (n == 0) {
                continue;
            }
            const uint64_t lo = i == 0 ? 0 : uint64_t{1} << (i - 1);
            value << (first ? "" : ", ") << "[" << lo << ", " << n << "]";
            first = false;
        }
        value << "]}";
        histograms[name] = value.str();
    }
    std::map<std::string, std::string> records;
    for (const auto& [stream, entries] : records_) {
        std::ostringstream value;
        value << "[";
        for (size_t i = 0; i < entries.size(); ++i) {
            value << (i == 0 ? "" : ", ") << entries[i];
        }
        value << "]";
        records[stream] = value.str();
    }

    std::ostringstream os;
    os << (pretty ? "{\n" : "{");
    writeSection(os, "counters", counters, false, pretty);
    writeSection(os, "gauges", gauges, false, pretty);
    writeSection(os, "histograms", histograms, false, pretty);
    writeSection(os, "records", records, true, pretty);
    os << (pretty ? "}\n" : "}");
    return os.str();
}

namespace {

/**
 * Split a registry metric name into a Prometheus family name and label
 * set: dots (and any other character outside [a-zA-Z0-9_]) become
 * underscores under an `isamore_` prefix, and a trailing
 * `{key=value,...}` suffix becomes `{key="value",...}`.
 */
void
promName(const std::string& name, std::string* family, std::string* labels)
{
    const size_t brace = name.find('{');
    const std::string base =
        brace == std::string::npos ? name : name.substr(0, brace);
    *family = "isamore_";
    for (char c : base) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        *family += ok ? c : '_';
    }
    labels->clear();
    if (brace == std::string::npos || name.back() != '}') {
        return;
    }
    const std::string inside =
        name.substr(brace + 1, name.size() - brace - 2);
    size_t pos = 0;
    while (pos < inside.size()) {
        size_t comma = inside.find(',', pos);
        if (comma == std::string::npos) {
            comma = inside.size();
        }
        const std::string pair = inside.substr(pos, comma - pos);
        const size_t eq = pair.find('=');
        if (eq != std::string::npos) {
            if (!labels->empty()) {
                *labels += ",";
            }
            *labels += pair.substr(0, eq) + "=\"" +
                       jsonEscape(pair.substr(eq + 1)) + "\"";
        }
        pos = comma + 1;
    }
}

void
promSample(std::ostream& os, const std::string& family,
           const std::string& labels, uint64_t value)
{
    os << family;
    if (!labels.empty()) {
        os << "{" << labels << "}";
    }
    os << " " << value << "\n";
}

}  // namespace

std::string
Registry::toPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;

    // Group samples by family so each `# TYPE` header prints once even
    // when a family fans out over labels.
    auto renderScalars = [&os](const auto& metrics, const char* type) {
        std::map<std::string, std::vector<std::pair<std::string, int64_t>>>
            families;
        for (const auto& [name, metric] : metrics) {
            std::string family;
            std::string labels;
            promName(name, &family, &labels);
            families[family].emplace_back(
                labels, static_cast<int64_t>(metric->value()));
        }
        for (const auto& [family, samples] : families) {
            os << "# TYPE " << family << " " << type << "\n";
            for (const auto& [labels, value] : samples) {
                os << family;
                if (!labels.empty()) {
                    os << "{" << labels << "}";
                }
                os << " " << value << "\n";
            }
        }
    };
    renderScalars(counters_, "counter");
    renderScalars(gauges_, "gauge");

    std::map<std::string,
             std::vector<std::pair<std::string, const Histogram*>>>
        histFamilies;
    for (const auto& [name, histogram] : histograms_) {
        std::string family;
        std::string labels;
        promName(name, &family, &labels);
        histFamilies[family].emplace_back(labels, histogram.get());
    }
    for (const auto& [family, samples] : histFamilies) {
        os << "# TYPE " << family << " histogram\n";
        for (const auto& [labels, histogram] : samples) {
            const std::string sep = labels.empty() ? "" : ",";
            uint64_t cumulative = 0;
            for (size_t i = 0; i < Histogram::kBuckets; ++i) {
                const uint64_t n = histogram->bucket(i);
                if (n == 0) {
                    continue;
                }
                cumulative += n;
                // Bucket i holds integer samples in [2^(i-1), 2^i), so
                // the inclusive upper bound is 2^i - 1 (bucket 0 is the
                // exact-zero bucket).
                std::string le = "+Inf";
                if (i == 0) {
                    le = "0";
                } else if (i < 64) {
                    le = std::to_string((uint64_t{1} << i) - 1);
                }
                promSample(os, family + "_bucket",
                           labels + sep + "le=\"" + le + "\"", cumulative);
            }
            promSample(os, family + "_bucket",
                       labels + sep + "le=\"+Inf\"", histogram->count());
            promSample(os, family + "_sum", labels, histogram->sum());
            promSample(os, family + "_count", labels, histogram->count());
        }
    }
    return os.str();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    records_.clear();
}

bool
writeChromeTrace(const std::string& path)
{
    std::ofstream out(path);
    if (!out.good()) {
        return false;
    }
    out << Tracer::instance().toChromeJson();
    return out.good();
}

bool
writeMetrics(const std::string& path)
{
    std::ofstream out(path);
    if (!out.good()) {
        return false;
    }
    out << Registry::instance().toJson();
    return out.good();
}

}  // namespace telemetry
}  // namespace isamore
