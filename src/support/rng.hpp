/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the framework (rule enumeration fuzzing,
 * workload generators, sampling tie-breaks) draws from an explicitly seeded
 * Rng so whole-pipeline runs are reproducible bit-for-bit.
 */
#pragma once

#include <cstdint>

namespace isamore {

/** xoshiro256** generator seeded via splitmix64. */
class Rng {
 public:
    explicit Rng(uint64_t seed = 0x15a0'0000'0000'0001ull) { reseed(seed); }

    /** Re-seed the generator deterministically. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform signed 64-bit value, useful for fuzzing integer semantics. */
    int64_t nextInt64() { return static_cast<int64_t>(next()); }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

 private:
    static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    uint64_t state_[4] = {};
};

}  // namespace isamore
