/**
 * @file
 * An ASCII table printer used by the benchmark harnesses to reproduce the
 * paper's tables (row/column layout, aligned columns).
 */
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace isamore {

/** Accumulates rows of cells and renders them with aligned columns. */
class TextTable {
 public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row. Missing cells render empty; extra cells are an error. */
    void addRow(std::vector<std::string> cells);

    /** Render to @p os with a header separator line. */
    void print(std::ostream& os) const;

    /** Format a double with @p precision digits after the decimal point. */
    static std::string num(double value, int precision = 2);

 private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace isamore
