#include "support/latency.hpp"

namespace isamore {

void
LatencyDigest::observe(uint64_t sample)
{
    buckets_[telemetry::Histogram::bucketOf(sample)] += 1;
    count_ += 1;
    sum_ += sample;
    if (sample > max_) {
        max_ = sample;
    }
}

void
LatencyDigest::merge(const LatencyDigest& other)
{
    for (size_t i = 0; i < kBuckets; ++i) {
        buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) {
        max_ = other.max_;
    }
}

uint64_t
LatencyDigest::quantile(double q) const
{
    if (count_ == 0) {
        return 0;
    }
    if (q <= 0.0) {
        q = 0.0;
    }
    if (q > 1.0) {
        q = 1.0;
    }
    // Rank of the q'th sample, 1-based: ceil(q * count), clamped to
    // [1, count].  Integer arithmetic would overflow for huge counts;
    // the double round-trip is exact for counts below 2^53, far past
    // anything a daemon accumulates.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) {
        ++rank;
    }
    if (rank == 0) {
        rank = 1;
    }
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            return i == 0 ? 0 : uint64_t{1} << (i - 1);
        }
    }
    return max_;
}

}  // namespace isamore
