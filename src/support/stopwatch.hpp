/**
 * @file
 * Wall-clock timing and resident-memory measurement for the evaluation
 * harnesses (Table 2 / Table 3 runtime and memory columns).
 */
#pragma once

#include <chrono>
#include <cstddef>

namespace isamore {

/** A simple wall-clock stopwatch. */
class Stopwatch {
 public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

 private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Current resident set size of this process in bytes, read from
 * /proc/self/statm.  Returns 0 when unavailable.
 */
size_t currentRssBytes();

/** Peak resident set size (VmHWM) in bytes; 0 when unavailable. */
size_t peakRssBytes();

}  // namespace isamore
