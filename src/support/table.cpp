#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace isamore {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ISAMORE_USER_CHECK(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    ISAMORE_USER_CHECK(cells.size() <= headers_.size(),
                       "row has more cells than table columns");
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto print_row = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::left
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << " |\n";
    };

    print_row(headers_);
    os << '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

}  // namespace isamore
