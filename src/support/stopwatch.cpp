#include "support/stopwatch.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace isamore {

size_t
currentRssBytes()
{
    FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr) {
        return 0;
    }
    long total = 0;
    long resident = 0;
    int n = std::fscanf(f, "%ld %ld", &total, &resident);
    std::fclose(f);
    if (n != 2) {
        return 0;
    }
    return static_cast<size_t>(resident) *
           static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

size_t
peakRssBytes()
{
    FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) {
        return 0;
    }
    char line[256];
    size_t result = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            long kb = 0;
            if (std::sscanf(line + 6, "%ld", &kb) == 1) {
                result = static_cast<size_t>(kb) * 1024;
            }
            break;
        }
    }
    std::fclose(f);
    return result;
}

}  // namespace isamore
