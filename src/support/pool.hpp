/**
 * @file
 * A shared work-stealing thread pool for the embarrassingly parallel
 * phases of the pipeline (EqSat's read-only match fan-out, the AU pair
 * sweep, the bench harness).
 *
 * Each lane (the calling thread plus N-1 persistent workers) owns a
 * Chase--Lev-style deque of task indices: the owner pushes and pops at
 * the bottom, idle lanes steal from the top.  parallelFor() preloads the
 * index range block-wise across the lanes -- a lane starts on its own
 * contiguous block (good locality for chunked sweeps) and steals from its
 * neighbours once it drains -- so the pool load-balances skewed workloads
 * without a central queue.
 *
 * Determinism contract: parallelFor(n, body) invokes body(i) exactly once
 * for every i in [0, n), in an unspecified order and from unspecified
 * threads.  Callers that need deterministic output must make each body(i)
 * independent and merge results by index afterwards (see rii/au.cpp and
 * egraph/rewrite.cpp).  Results then do not depend on the thread count.
 *
 * Thread-count resolution: the process-global pool is sized from, in
 * priority order, setGlobalThreads() (the CLI's --threads flag), the
 * ISAMORE_THREADS environment variable, and the hardware concurrency.
 * A size of 1 (or a 1-core host) degrades every parallelFor to a plain
 * serial loop -- no threads are ever spawned and the only atomic touched
 * is one task-counter add per job (see PoolStats).
 *
 * The pool runs one parallelFor at a time (a mutex serializes concurrent
 * submitters); nested parallelFor from inside a task would deadlock and
 * is checked against in debug builds by the reentrancy flag.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace isamore {

namespace telemetry {
class RequestSink;
}  // namespace telemetry

/**
 * Cumulative work accounting for one ThreadPool since construction.
 * `tasks` counts body(i) invocations per lane (serial fallbacks charge
 * lane 0); `steals` counts the subset a lane claimed from another lane's
 * deque.  Values are relaxed-atomic snapshots: exact at quiescent points,
 * approximate while a job runs.  Steal counts depend on scheduling and
 * are NOT deterministic across runs or thread counts.
 */
struct PoolStats {
    size_t lanes = 1;
    uint64_t tasks = 0;
    uint64_t steals = 0;
    std::vector<uint64_t> perLaneTasks;
    std::vector<uint64_t> perLaneSteals;
};

class ThreadPool {
 public:
    /**
     * Create a pool with @p threads lanes (caller + threads-1 workers).
     * 0 means defaultThreadCount().  A single-lane pool spawns nothing.
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of lanes (worker threads + the submitting thread). */
    size_t threadCount() const { return lanes_; }

    /**
     * Run body(i) for every i in [0, n), distributing the indices across
     * the lanes with work stealing; blocks until all calls returned.  The
     * first exception a task throws is rethrown here after the remaining
     * tasks finish.
     */
    void parallelFor(size_t n, const std::function<void(size_t)>& body);

    /** parallelFor that collects fn(i) into a vector indexed by i. */
    template <typename T, typename F>
    std::vector<T>
    parallelMap(size_t n, F&& fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

    /** ISAMORE_THREADS if set (>=1), else the hardware concurrency. */
    static size_t defaultThreadCount();

    /** Snapshot the cumulative task/steal counters (see PoolStats). */
    PoolStats stats() const;

 private:
    /**
     * Chase--Lev deque of task indices, preloaded before a job starts.
     * Slots are never rewritten while a job runs, so pop/steal only race
     * on top/bottom (plain seq_cst atomics; no standalone fences, which
     * keeps TSan able to see every ordering edge).
     */
    struct alignas(64) Deque {
        std::vector<size_t> items;
        std::atomic<int64_t> top{0};
        std::atomic<int64_t> bottom{0};
    };

    /**
     * Per-lane work counters, cache-line separated so the hot-loop
     * increments never share a line across lanes.  Always-on relaxed
     * adds: the cost is one uncontended add per executed task, which the
     * bench harness showed is noise next to the task bodies themselves.
     */
    struct alignas(64) LaneCounters {
        std::atomic<uint64_t> tasks{0};
        std::atomic<uint64_t> steals{0};
    };

    bool popOwn(Deque& deque, size_t& out);
    bool steal(Deque& deque, size_t& out);
    void runLane(size_t lane);
    void execute(size_t index);
    void workerMain(size_t lane);

    size_t lanes_ = 1;
    std::vector<std::thread> workers_;
    std::unique_ptr<Deque[]> deques_;  // atomics make Deque non-movable
    std::unique_ptr<LaneCounters[]> counters_;  // one per lane, always set

    // Job slot (one job at a time; submitMutex_ serializes submitters).
    std::mutex submitMutex_;
    bool inParallelFor_ = false;  // reentrancy check
    const std::function<void(size_t)>* body_ = nullptr;
    /** The submitter's per-request telemetry sink, forwarded to worker
     *  lanes for the job's duration so spans closed on workers still
     *  attribute to the request being served (see telemetry.hpp). */
    telemetry::RequestSink* jobSink_ = nullptr;
    std::mutex errorMutex_;
    std::exception_ptr error_;

    // Worker wakeup: epoch bump announces a new job, stop_ shuts down.
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    uint64_t epoch_ = 0;
    bool stop_ = false;

    // Completion signal back to the submitter: a worker "joins" an epoch
    // once it has fully drained its lane and stopped touching the deques.
    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    size_t joined_ = 0;  // guarded by doneMutex_
};

/**
 * The process-global pool.  First use creates it with
 * defaultThreadCount() lanes unless setGlobalThreads() ran earlier.
 */
ThreadPool& globalPool();

/**
 * Resize the global pool (0 = back to the default).  Takes effect on the
 * next globalPool() call; must not run concurrently with work on the
 * pool.  The CLI maps --threads onto this.
 */
void setGlobalThreads(size_t threads);

/** Lane count the next globalPool() call will have. */
size_t globalThreadCount();

}  // namespace isamore
