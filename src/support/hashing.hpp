/**
 * @file
 * Hashing helpers shared by the e-graph hashcons, structural-hash analysis,
 * and pattern deduplication.
 */
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>

namespace isamore {

/** A strong 64-bit mixer (splitmix64 finalizer). */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine a new value into a running 64-bit hash. */
inline uint64_t
hashCombine(uint64_t seed, uint64_t value)
{
    return mix64(seed ^ (mix64(value) + 0x9e3779b97f4a7c15ull +
                         (seed << 6) + (seed >> 2)));
}

/** Hash an arbitrary value with std::hash and mix the result. */
template <typename T>
uint64_t
hashValue(const T& v)
{
    return mix64(static_cast<uint64_t>(std::hash<T>{}(v)));
}

/** Population count of the bitwise difference between two 64-bit hashes. */
inline int
hammingDistance64(uint64_t a, uint64_t b)
{
    return __builtin_popcountll(a ^ b);
}

}  // namespace isamore
