#include "support/symbol.hpp"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "support/check.hpp"

namespace isamore {
namespace {

/**
 * Process-global intern table guarded by a mutex.
 *
 * Strings live in a deque so they are never relocated, which keeps the
 * string_view keys in the id map valid for the process lifetime.
 */
struct InternTable {
    std::mutex mutex;
    std::deque<std::string> texts;
    std::unordered_map<std::string_view, uint32_t> ids;

    InternTable()
    {
        texts.emplace_back("");
        ids.emplace(texts.back(), 0);
    }

    uint32_t
    intern(std::string_view text)
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = ids.find(text);
        if (it != ids.end()) {
            return it->second;
        }
        texts.emplace_back(text);
        uint32_t id = static_cast<uint32_t>(texts.size() - 1);
        ids.emplace(texts.back(), id);
        return id;
    }

    const std::string&
    text(uint32_t id)
    {
        std::lock_guard<std::mutex> lock(mutex);
        ISAMORE_CHECK(id < texts.size());
        return texts[id];
    }
};

InternTable&
table()
{
    static InternTable instance;
    return instance;
}

}  // namespace

Symbol::Symbol(std::string_view text) : id_(table().intern(text)) {}

const std::string&
Symbol::str() const
{
    return table().text(id_);
}

}  // namespace isamore
