/**
 * @file
 * Hierarchical resource budgets for the pipeline stages.
 *
 * A Budget bundles the three resources a stage can run out of -- a
 * wall-clock deadline, a consumable work-unit allowance (rewrite
 * applications, AU candidates, ...), and a resident-memory ceiling --
 * behind one object that can be *split*: `parent.child(spec)` derives a
 * budget whose deadline is clamped to the parent's and whose unit charges
 * propagate up the chain, so a run-level budget bounds the sum of all
 * stage-level consumption no matter how the stages subdivide it.
 *
 * All limits default to "unlimited", making a default Budget free to
 * thread through hot paths: charge() is a counter bump and compare, and
 * expired() only reads the clock when a deadline is actually set.
 *
 * Budgets are sticky: once any limit trips, ok() stays false and stop()
 * reports the first limit that tripped.  Callers are expected to treat a
 * tripped budget as "stop cleanly and report partial results", never as
 * an error (see DESIGN.md "Error taxonomy and degradation semantics").
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <string>

namespace isamore {

/** "No limit" sentinel for time limits. */
inline constexpr double kUnlimitedSeconds =
    std::numeric_limits<double>::infinity();
/** "No limit" sentinel for counted limits. */
inline constexpr size_t kUnlimitedAmount =
    std::numeric_limits<size_t>::max();

/** Declarative limits for one Budget; every field defaults to unlimited. */
struct BudgetSpec {
    double maxSeconds = kUnlimitedSeconds;  ///< wall-clock allowance
    size_t maxUnits = kUnlimitedAmount;     ///< consumable work units
    size_t maxRssBytes = kUnlimitedAmount;  ///< resident-memory ceiling

    bool
    unlimited() const
    {
        return maxSeconds == kUnlimitedSeconds &&
               maxUnits == kUnlimitedAmount &&
               maxRssBytes == kUnlimitedAmount;
    }
};

/** The first limit a budget ran out of. */
enum class BudgetStop { None, Deadline, Units, Memory, Cancelled };

/** Printable name of a BudgetStop. */
const char* budgetStopName(BudgetStop stop);

class Budget {
 public:
    /** An unlimited root budget. */
    Budget();

    /**
     * A budget with the given limits.  When @p parent is non-null the
     * deadline is clamped to the parent's and unit charges propagate to
     * every ancestor; the parent must outlive this budget.
     */
    explicit Budget(const BudgetSpec& spec, Budget* parent = nullptr);

    /** Split off a child budget (deadline-clamped, charge-propagating). */
    Budget child(const BudgetSpec& spec);

    /**
     * Consume @p units of work against this budget and all ancestors.
     * Returns false -- and latches the Units stop on the level that ran
     * out -- once any level's allowance is exceeded.
     */
    bool charge(size_t units = 1);

    /**
     * Whether any limit has tripped here or in an ancestor.  Polls the
     * deadline (and the RSS ceiling, when one is set); the result is
     * sticky.
     */
    bool expired();

    /** !expired(). */
    bool ok() { return !expired(); }

    /**
     * Externally latch the Cancelled stop (idempotent; an earlier stop
     * wins).  This is the asynchronous cancellation hook: a watchdog
     * thread can expire a budget another thread is charging against
     * without waiting for that thread to poll the deadline -- charge()
     * observes the latch on its next call, which covers hot paths that
     * never call expired().  Cancellation counts as a deadline-class stop
     * for degradation reporting.
     */
    void cancel() { latchStop(BudgetStop::Cancelled); }

    /** The first limit that tripped on *this* level (None while ok). */
    BudgetStop stop() const { return stop_.load(std::memory_order_relaxed); }

    /**
     * Whether this budget and every ancestor carry no limit at all: no
     * deadline, no unit allowance, no RSS ceiling, and no stop latched.
     * Caching layers use this to decide whether recorded work may be
     * replayed: only an unconstrained chain is guaranteed to reach the
     * same outcome the recorded (uninterrupted) run reached.
     */
    bool unconstrained() const;

    /** The first tripped limit along the ancestor chain (None while ok).
     *  Does not poll the clock; call expired() first for a fresh view. */
    BudgetStop effectiveStop() const;

    /** Work units charged against this level so far. */
    size_t
    usedUnits() const
    {
        return usedUnits_.load(std::memory_order_relaxed);
    }

    /** Seconds elapsed since this budget was created. */
    double elapsedSeconds() const;

    /** Seconds until the deadline (kUnlimitedSeconds when none is set). */
    double remainingSeconds() const;

    /** One-line human-readable state, for diagnostics and logs. */
    std::string describe() const;

    Budget(const Budget&) = delete;
    Budget& operator=(const Budget&) = delete;
    Budget(Budget&&) noexcept;  // manual: atomic members are not movable

 private:
    using Clock = std::chrono::steady_clock;

    bool checkDeadline();
    bool latchStop(BudgetStop stop);

    Budget* parent_ = nullptr;
    Clock::time_point start_;
    bool hasDeadline_ = false;
    Clock::time_point deadline_{};
    size_t maxUnits_ = kUnlimitedAmount;
    // charge() and expired() may be called concurrently from pool workers
    // (the AU shards and EqSat's match fan-out all charge one run budget),
    // so the mutable state is a fetch_add counter plus a CAS-once latch.
    std::atomic<size_t> usedUnits_{0};
    size_t maxRssBytes_ = kUnlimitedAmount;
    std::atomic<BudgetStop> stop_{BudgetStop::None};
};

}  // namespace isamore
