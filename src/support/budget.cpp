#include "support/budget.hpp"

#include <algorithm>
#include <sstream>

#include "support/stopwatch.hpp"

namespace isamore {

const char*
budgetStopName(BudgetStop stop)
{
    switch (stop) {
      case BudgetStop::None:
        return "none";
      case BudgetStop::Deadline:
        return "deadline";
      case BudgetStop::Units:
        return "units";
      case BudgetStop::Memory:
        return "memory";
      case BudgetStop::Cancelled:
        return "cancelled";
    }
    return "?";
}

Budget::Budget() : start_(Clock::now()) {}

Budget::Budget(const BudgetSpec& spec, Budget* parent)
    : parent_(parent),
      start_(Clock::now()),
      maxUnits_(spec.maxUnits),
      maxRssBytes_(spec.maxRssBytes)
{
    if (spec.maxSeconds != kUnlimitedSeconds) {
        hasDeadline_ = true;
        deadline_ = start_ + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     std::max(0.0, spec.maxSeconds)));
    }
    if (parent_ != nullptr && parent_->hasDeadline_) {
        if (!hasDeadline_ || parent_->deadline_ < deadline_) {
            hasDeadline_ = true;
            deadline_ = parent_->deadline_;
        }
    }
}

Budget::Budget(Budget&& other) noexcept
    : parent_(other.parent_),
      start_(other.start_),
      hasDeadline_(other.hasDeadline_),
      deadline_(other.deadline_),
      maxUnits_(other.maxUnits_),
      usedUnits_(other.usedUnits_.load(std::memory_order_relaxed)),
      maxRssBytes_(other.maxRssBytes_),
      stop_(other.stop_.load(std::memory_order_relaxed))
{
}

Budget
Budget::child(const BudgetSpec& spec)
{
    return Budget(spec, this);
}

bool
Budget::latchStop(BudgetStop stop)
{
    BudgetStop expected = BudgetStop::None;
    stop_.compare_exchange_strong(expected, stop,
                                  std::memory_order_relaxed);
    return true;
}

bool
Budget::charge(size_t units)
{
    bool granted = true;
    for (Budget* level = this; level != nullptr; level = level->parent_) {
        if (level->stop_.load(std::memory_order_relaxed) !=
            BudgetStop::None) {
            granted = false;
            continue;
        }
        const size_t used =
            level->usedUnits_.fetch_add(units, std::memory_order_relaxed) +
            units;
        if (used > level->maxUnits_) {
            level->latchStop(BudgetStop::Units);
            granted = false;
        }
    }
    return granted;
}

bool
Budget::checkDeadline()
{
    if (stop_.load(std::memory_order_relaxed) != BudgetStop::None) {
        return true;
    }
    if (hasDeadline_ && Clock::now() > deadline_) {
        return latchStop(BudgetStop::Deadline);
    }
    if (maxRssBytes_ != kUnlimitedAmount &&
        currentRssBytes() > maxRssBytes_) {
        return latchStop(BudgetStop::Memory);
    }
    return false;
}

bool
Budget::expired()
{
    for (Budget* level = this; level != nullptr; level = level->parent_) {
        if (level->checkDeadline()) {
            return true;
        }
    }
    return false;
}

BudgetStop
Budget::effectiveStop() const
{
    for (const Budget* level = this; level != nullptr;
         level = level->parent_) {
        if (level->stop_ != BudgetStop::None) {
            return level->stop_;
        }
    }
    return BudgetStop::None;
}

bool
Budget::unconstrained() const
{
    for (const Budget* level = this; level != nullptr;
         level = level->parent_) {
        if (level->hasDeadline_ ||
            level->maxUnits_ != kUnlimitedAmount ||
            level->maxRssBytes_ != kUnlimitedAmount ||
            level->stop_.load(std::memory_order_relaxed) !=
                BudgetStop::None) {
            return false;
        }
    }
    return true;
}

double
Budget::elapsedSeconds() const
{
    return std::chrono::duration<double>(Clock::now() - start_).count();
}

double
Budget::remainingSeconds() const
{
    if (!hasDeadline_) {
        return kUnlimitedSeconds;
    }
    return std::max(
        0.0,
        std::chrono::duration<double>(deadline_ - Clock::now()).count());
}

std::string
Budget::describe() const
{
    std::ostringstream os;
    os << "budget[stop=" << budgetStopName(stop())
       << " units=" << usedUnits() << "/";
    if (maxUnits_ == kUnlimitedAmount) {
        os << "inf";
    } else {
        os << maxUnits_;
    }
    os << " elapsed=" << elapsedSeconds() << "s";
    if (hasDeadline_) {
        os << " remaining=" << remainingSeconds() << "s";
    }
    os << "]";
    return os.str();
}

}  // namespace isamore
