/**
 * @file
 * Hardware-aware multi-objective pattern selection (paper §5.4.2) and the
 * extraction + fidelity-refinement step (§5.4.3).
 *
 * Selection runs an e-class analysis propagating Pareto fronts of pattern
 * sets (bitmasks over the ≤64 costed candidates): a non-App node combines
 * its children's fronts, an App node adds its own pattern, and each class
 * prunes to the top-K sets by prioritized speedup (beam search).  The
 * front of the program root yields the candidate solutions.
 *
 * Refinement extracts a concrete program for each solution with a latency
 * cost function (software op latency vs. App hardware latency), recounts
 * the pattern uses actually chosen, recomputes Eq. 1-3 exactly on those
 * uses, and returns the refreshed solutions.
 */
#pragma once

#include "rii/cost.hpp"
#include "support/budget.hpp"

namespace isamore {
namespace rii {

/** One point on the speedup/area Pareto front. */
struct Solution {
    std::vector<int64_t> patternIds;
    double deltaNs = 0.0;
    double speedup = 1.0;
    double areaUm2 = 0.0;

    /** Extracted program with App nodes (set by refinement). */
    TermPtr program;

    /** Pattern use counts in the extracted program, parallel to
     *  patternIds. */
    std::vector<size_t> useCounts;
};

/** Selection options. */
struct SelectOptions {
    size_t beamK = 8;        ///< per-class front width
    int maxRounds = 64;      ///< fixpoint bound for cyclic graphs
    bool astSizeObjective = false;  ///< AstSize mode: minimize term size

    /** Wall-clock allowance for selection + refinement (unlimited by
     *  default); tripping it truncates rather than aborts. */
    double maxSeconds = kUnlimitedSeconds;
};

/** Degradation record of one selection run. */
struct SelectOutcome {
    bool truncated = false;  ///< stopped before fixpoint / full refinement
    size_t roundsRun = 0;    ///< fixpoint rounds completed
};

/**
 * Run Pareto selection + refinement over @p egraph.
 *
 * When @p budget is given, its deadline (clamped with options.maxSeconds)
 * is polled between fixpoint rounds and refinement steps; on a trip the
 * partial fronts computed so far are refined and returned -- still
 * internally Pareto-consistent, just possibly missing solutions -- and
 * @p outcome (when non-null) records the truncation.
 *
 * @param candidates costed candidates (at most 64; callers pre-rank)
 * @return non-dominated refined solutions, sorted by increasing area
 */
std::vector<Solution> selectAndRefine(const EGraph& egraph, EClassId root,
                                      const std::vector<PatternEval>& candidates,
                                      const CostModel& cost,
                                      const SelectOptions& options,
                                      Budget* budget = nullptr,
                                      SelectOutcome* outcome = nullptr);

/** Keep only non-dominated (speedup up, area down) solutions. */
std::vector<Solution> paretoFilter(std::vector<Solution> solutions);

}  // namespace rii
}  // namespace isamore
