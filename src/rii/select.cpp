#include "rii/select.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "egraph/analysis.hpp"
#include "egraph/extract.hpp"
#include "profile/timing.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"

namespace isamore {
namespace rii {
namespace {

using Mask = uint64_t;

/** Pattern id of an App e-node (via its PatRef child), or -1. */
int64_t
appPatternId(const EGraph& egraph, const ENode& node)
{
    if (node.op != Op::App || node.children.empty()) {
        return -1;
    }
    for (const ENode& child :
         egraph.cls(egraph.find(node.children[0])).nodes) {
        if (child.op == Op::PatRef) {
            return child.payload.a;
        }
    }
    return -1;
}

/** Front pruner: dedupe, drop dominated, keep the top K by saving. */
class FrontOps {
 public:
    FrontOps(const std::vector<double>& delta,
             const std::vector<double>& area, size_t beamK)
        : delta_(delta), area_(area), beamK_(beamK)
    {}

    double
    deltaOf(Mask m) const
    {
        double total = 0;
        while (m != 0) {
            int bit = __builtin_ctzll(m);
            total += delta_[bit];
            m &= m - 1;
        }
        return total;
    }

    double
    areaOf(Mask m) const
    {
        double total = 0;
        while (m != 0) {
            int bit = __builtin_ctzll(m);
            total += area_[bit];
            m &= m - 1;
        }
        return total;
    }

    std::vector<Mask>
    prune(std::vector<Mask> masks) const
    {
        std::sort(masks.begin(), masks.end());
        masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
        // Sort by saving (descending), then area (ascending).
        std::sort(masks.begin(), masks.end(), [&](Mask x, Mask y) {
            double dx = deltaOf(x);
            double dy = deltaOf(y);
            if (dx != dy) {
                return dx > dy;
            }
            return areaOf(x) < areaOf(y);
        });
        // Non-dominated prefix scan: keep masks whose area is below every
        // better-saving mask's area.
        std::vector<Mask> kept;
        double best_area = std::numeric_limits<double>::infinity();
        for (Mask m : masks) {
            double a = areaOf(m);
            if (a < best_area || kept.empty()) {
                kept.push_back(m);
                best_area = std::min(best_area, a);
            }
            if (kept.size() >= beamK_) {
                break;
            }
        }
        return kept;
    }

    /** Cartesian combine of two fronts with pruning. */
    std::vector<Mask>
    combine(const std::vector<Mask>& a, const std::vector<Mask>& b) const
    {
        std::vector<Mask> out;
        out.reserve(a.size() * b.size());
        for (Mask x : a) {
            for (Mask y : b) {
                out.push_back(x | y);
            }
        }
        return prune(std::move(out));
    }

 private:
    const std::vector<double>& delta_;
    const std::vector<double>& area_;
    size_t beamK_;
};

}  // namespace

std::vector<Solution>
paretoFilter(std::vector<Solution> solutions)
{
    std::sort(solutions.begin(), solutions.end(),
              [](const Solution& a, const Solution& b) {
                  if (a.speedup != b.speedup) {
                      return a.speedup > b.speedup;
                  }
                  return a.areaUm2 < b.areaUm2;
              });
    std::vector<Solution> kept;
    double best_area = std::numeric_limits<double>::infinity();
    for (Solution& s : solutions) {
        if (kept.empty() || s.areaUm2 < best_area) {
            best_area = std::min(best_area, s.areaUm2);
            kept.push_back(std::move(s));
        }
    }
    std::sort(kept.begin(), kept.end(),
              [](const Solution& a, const Solution& b) {
                  return a.areaUm2 < b.areaUm2;
              });
    return kept;
}

std::vector<Solution>
selectAndRefine(const EGraph& egraph, EClassId root,
                const std::vector<PatternEval>& candidates,
                const CostModel& cost, const SelectOptions& options,
                Budget* parent, SelectOutcome* outcome)
{
    ISAMORE_USER_CHECK(candidates.size() <= 64,
                       "selection supports at most 64 candidates");
    root = egraph.find(root);

    BudgetSpec spec;
    spec.maxSeconds = options.maxSeconds;
    Budget budget(spec, parent);
    SelectOutcome localOutcome;
    SelectOutcome& out = outcome != nullptr ? *outcome : localOutcome;
    out = SelectOutcome{};

    // Bit tables.
    std::unordered_map<int64_t, int> bitOf;
    std::vector<double> delta(candidates.size());
    std::vector<double> area(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        bitOf[candidates[i].id] = static_cast<int>(i);
        area[i] = candidates[i].hw.areaUm2;
        delta[i] = options.astSizeObjective
                       ? static_cast<double>(candidates[i].uses.size()) *
                             (static_cast<double>(candidates[i].opCount) -
                              1.0)
                       : candidates[i].deltaNs;
    }
    FrontOps ops(delta, area, options.beamK);

    // Fixpoint propagation of per-class fronts.
    const auto ids = egraph.classIds();
    ClassMap<std::vector<Mask>> fronts;
    for (int round = 0; round < options.maxRounds; ++round) {
        // The fronts computed so far stay internally consistent when the
        // fixpoint is cut short; stopping here only loses solutions.
        if (fault::tripped("select.round") || !budget.ok()) {
            out.truncated = true;
            break;
        }
        out.roundsRun = static_cast<size_t>(round) + 1;
        bool changed = false;
        for (EClassId id : ids) {
            std::vector<Mask> merged;
            for (const ENode& node : egraph.cls(id).nodes) {
                std::vector<Mask> nodeFront{0};
                bool ready = true;
                for (EClassId child : node.children) {
                    auto it = fronts.find(egraph.find(child));
                    if (it == fronts.end()) {
                        ready = false;
                        break;
                    }
                    nodeFront = ops.combine(nodeFront, it->second);
                }
                if (!ready) {
                    continue;
                }
                int64_t pid = appPatternId(egraph, node);
                if (pid >= 0) {
                    auto bit = bitOf.find(pid);
                    if (bit == bitOf.end()) {
                        continue;  // unknown pattern: not selectable
                    }
                    for (Mask& m : nodeFront) {
                        m |= (1ull << bit->second);
                    }
                }
                merged.insert(merged.end(), nodeFront.begin(),
                              nodeFront.end());
            }
            if (merged.empty()) {
                continue;
            }
            auto pruned = ops.prune(std::move(merged));
            auto& slot = fronts[id];
            if (slot != pruned) {
                slot = std::move(pruned);
                changed = true;
            }
        }
        if (!changed) {
            break;
        }
    }

    auto rootFront = fronts.find(root);
    if (rootFront == fronts.end()) {
        return {};
    }

    // Refinement per front element.
    std::vector<Solution> solutions;
    for (Mask mask : rootFront->second) {
        if (fault::tripped("select.refine") || !budget.ok()) {
            out.truncated = true;
            break;
        }
        // Extraction with the latency objective (or AST size).
        auto costFn = [&](const ENode& node,
                          const std::vector<double>& childCosts)
            -> double {
            double children = 0;
            for (double c : childCosts) {
                children += c;
            }
            int64_t pid = appPatternId(egraph, node);
            if (pid >= 0) {
                auto bit = bitOf.find(pid);
                const bool selected =
                    bit != bitOf.end() &&
                    (mask & (1ull << bit->second)) != 0;
                if (!selected) {
                    return 1e15;  // exclude unselected patterns
                }
                if (options.astSizeObjective) {
                    return 1.0 + children;
                }
                const auto& cand =
                    candidates[static_cast<size_t>(bit->second)];
                return cand.hw.latencyNs + cost.invokeOverheadNs() +
                       children;
            }
            if (options.astSizeObjective) {
                return 1.0 + children;
            }
            if (node.op == Op::Loop && childCosts.size() == 2) {
                // Weight the body by an assumed trip count.
                return 1.0 + childCosts[0] + 16.0 * childCosts[1];
            }
            double own =
                profile::cyclesToNs(profile::cyclesForOp(node.op));
            if (node.isLeaf() || node.op == Op::List ||
                node.op == Op::Get || node.op == Op::Vec) {
                own = 0.01;
            }
            return own + children;
        };
        Extractor extractor(egraph, costFn);
        if (!extractor.costOf(root).has_value()) {
            continue;
        }
        Extraction extraction = extractor.extract(root);

        // Classes reachable through the chosen extraction, and for each,
        // whether the chosen node is an App of which pattern.
        std::unordered_map<EClassId, int64_t> chosenApp;
        {
            std::unordered_set<EClassId> seen;
            std::vector<EClassId> walk{root};
            while (!walk.empty()) {
                EClassId c = egraph.find(walk.back());
                walk.pop_back();
                if (!seen.insert(c).second) {
                    continue;
                }
                const ENode* node = extractor.chosenNode(c);
                if (node == nullptr) {
                    continue;
                }
                chosenApp[c] = appPatternId(egraph, *node);
                for (EClassId child : node->children) {
                    walk.push_back(child);
                }
            }
        }

        // Recompute Eq. 1-3 exactly on the extracted uses: a use counts
        // when its class is reachable and was extracted as this pattern's
        // App.  Overlapping patterns and shared subexpressions can claim
        // the same software work twice (the known optimism of Eq. 1's
        // per-use sum), so the claimed saving in each basic block is
        // capped at 90% of the time the profile actually spent there.
        Solution sol;
        sol.program = extraction.term;
        std::unordered_map<uint64_t, double> claimedPerBlock;
        auto blockKey = [](int func, ir::BlockId block) {
            return (static_cast<uint64_t>(func) << 32) | block;
        };
        for (const PatternEval& cand : candidates) {
            double refined = 0;
            size_t useSites = 0;  // program spots accelerated (reuse)
            for (const UseSite& u : cand.uses) {
                EClassId c = egraph.find(u.klass);
                auto it = chosenApp.find(c);
                if (it != chosenApp.end() && it->second == cand.id) {
                    const uint64_t key = blockKey(u.func, u.block);
                    const double budget =
                        0.9 * cost.blockSoftwareNs(u.func, u.block) -
                        claimedPerBlock[key];
                    const double granted =
                        std::min(u.savedNs, std::max(0.0, budget));
                    claimedPerBlock[key] += granted;
                    refined += granted;
                    ++useSites;
                }
            }
            if (useSites == 0) {
                continue;
            }
            sol.patternIds.push_back(cand.id);
            sol.useCounts.push_back(useSites);
            sol.deltaNs += refined;
            sol.areaUm2 += cand.hw.areaUm2;
        }
        sol.speedup = cost.speedup(sol.deltaNs);
        solutions.push_back(std::move(sol));
    }

    // Always include the empty (no custom instruction) solution so the
    // front starts at (1.0x, 0 area).
    Solution none;
    solutions.push_back(none);
    return paretoFilter(std::move(solutions));
}

}  // namespace rii
}  // namespace isamore
