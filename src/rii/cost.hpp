/**
 * @file
 * The profiling-based, hardware-aware cost model (paper §5.4.1, Eq. 1-3).
 *
 *   Δ_L(p) = Σ_{u ∈ use(p)}  ( Σ_{o ∈ p} CPO(bb(o, u)) − L_HLS(p) )
 *   S(P)   = L_cpu / (L_cpu − Σ_{p ∈ P} Δ_L(p))
 *   A(P)   = Σ_{p ∈ P} A_HLS(p)
 *
 * Uses are original-program sites whose e-class matches the pattern; each
 * use is weighted by its basic block's profiled execution count, and the
 * software side is ops(p) × CPO(bb) converted to nanoseconds at the CPU
 * clock.  Per-use savings are clamped at zero (a use where the custom
 * instruction is slower would simply not be rewritten).
 */
#pragma once

#include "frontend/encode.hpp"
#include "hls/estimator.hpp"
#include "profile/interp.hpp"
#include "rii/registry.hpp"

namespace isamore {
namespace rii {

/** One profiled use site of a pattern. */
struct UseSite {
    EClassId klass = kInvalidClass;  ///< canonical matched class
    int func = 0;
    ir::BlockId block = 0;
    uint64_t execCount = 0;
    double cpoCycles = 1.0;
    double savedNs = 0.0;  ///< clamped contribution to Δ_L
};

/** A costed candidate pattern. */
struct PatternEval {
    int64_t id = -1;
    TermPtr body;
    size_t opCount = 0;
    hls::HwCost hw;
    std::vector<UseSite> uses;
    double deltaNs = 0.0;  ///< Eq. 1 over all uses
};

/** Cost model bound to one encoded program and its profile. */
class CostModel {
 public:
    /**
     * @param prog encoded program (site provenance)
     * @param profile dynamic profile (CPO + exec counts)
     * @param registry resolves App sub-patterns during HLS estimation
     * @param invokeOverheadNs per-invocation custom-instruction overhead
     */
    CostModel(const frontend::EncodedProgram& prog,
              const profile::ModuleProfile& profile,
              const PatternRegistry& registry,
              double invokeOverheadNs = 1.0);

    /** Total software execution time L_cpu in nanoseconds. */
    double totalNs() const { return totalNs_; }

    double invokeOverheadNs() const { return invokeOverheadNs_; }

    /**
     * Evaluate pattern @p id against @p egraph (typically the saturated
     * per-phase graph; its classes must re-canonize the program's sites).
     */
    PatternEval evaluate(int64_t id, const EGraph& egraph,
                         size_t maxMatches = 4096) const;

    /** Speedup for a summed saving (Eq. 2). */
    double
    speedup(double sumDeltaNs) const
    {
        const double remaining = totalNs_ - sumDeltaNs;
        return remaining <= 0 ? 1e9 : totalNs_ / remaining;
    }

    /** Exec-weighted software ns for one op at @p site's CPO. */
    double siteOpNs(int func, ir::BlockId block) const;

    /** Profile row for a block (exec count). */
    uint64_t blockExecCount(int func, ir::BlockId block) const;

    /** Total software nanoseconds spent in one block over the profile. */
    double blockSoftwareNs(int func, ir::BlockId block) const;

    const frontend::EncodedProgram& program() const { return *prog_; }
    const PatternRegistry& registry() const { return *registry_; }

 private:
    const frontend::EncodedProgram* prog_;
    const profile::ModuleProfile* profile_;
    const PatternRegistry* registry_;
    double invokeOverheadNs_;
    double totalNs_;
};

}  // namespace rii
}  // namespace isamore
