/**
 * @file
 * The top-level RII algorithm (paper Fig. 7): phase-oriented iteration
 * over equality saturation, smart anti-unification, hardware-aware
 * selection, and extraction refinement.
 *
 * Phase scheduling (§5.1): phase 1 applies the saturating integer
 * ruleset, phase 2 the saturating float ruleset (both run to saturation),
 * and each subsequent phase applies a rotating slice of n non-saturating
 * rules for at most two iterations.  Every phase restarts from the
 * original (or vectorized) e-graph plus the κ(P_pre) application rewrites
 * of previously selected patterns, which both bounds the e-graph scale
 * and lets later phases generalize over earlier patterns.  Iteration
 * stops when the global Pareto front is unchanged.
 *
 * Modes reproduce the paper's evaluation configurations:
 *  - Default:  boundary sampling, hardware-aware objective
 *  - AstSize:  term-size selection/extraction objective (§7.1.3)
 *  - KDSample: kd-tree pattern sampling (§7.1.3)
 *  - Vector:   pattern vectorization in the first phase (§5.3, §7.1.3)
 *  - NoEqSat:  semantic consideration disabled (§7.1.2 baseline)
 *  - LLMT:     vanilla exhaustive e-graph AU in one monolithic phase
 *              (§7.1.1 baseline; expected to blow its budget)
 */
#pragma once

#include "frontend/encode.hpp"
#include "profile/interp.hpp"
#include "rii/au.hpp"
#include "rii/registry.hpp"
#include "rii/select.hpp"
#include "rii/vectorize.hpp"
#include "rules/rulesets.hpp"

namespace isamore {
namespace rii {

/** RII operating mode. */
enum class Mode { Default, AstSize, KDSample, Vector, NoEqSat, LLMT };

/** Printable mode name. */
const char* modeName(Mode mode);

/** Configuration for one RII run. */
struct RiiConfig {
    Mode mode = Mode::Default;

    /** Maximum number of phases after the two saturating ones. */
    int maxPhases = 6;
    /** Non-saturating rules applied per later phase. */
    size_t rulesPerPhase = 8;

    EqSatLimits eqsat{/*maxNodes=*/20000, /*maxIterations=*/8,
                      /*maxSeconds=*/10.0, /*maxMatchesPerRule=*/1024};
    AuOptions au;
    SelectOptions select;
    VectorizeOptions vectorize;

    /** Per-invocation custom-instruction overhead (RoCC issue+writeback). */
    double invokeOverheadNs = 0.5;
    /** Candidates kept for selection (<= 64). */
    size_t maxCostedCandidates = 48;

    RiiConfig()
    {
        au.maxResultPatterns = 300;
    }

    /** Derive the per-mode configuration from a base config. */
    static RiiConfig forMode(Mode mode);
};

/** Statistics of one RII run (feeds Tables 2 and 3). */
struct RiiStats {
    size_t origNodes = 0;
    size_t origClasses = 0;
    size_t peakNodes = 0;
    size_t peakClasses = 0;
    size_t rawCandidates = 0;  ///< raw AU candidates over all phases
    size_t dedupedCandidates = 0;  ///< |P_cand| after sampling + dedup
    size_t phasesRun = 0;
    bool auAborted = false;    ///< exhausted the candidate budget (LLMT)
    double seconds = 0.0;
    size_t peakRssBytes = 0;
    size_t packsCreated = 0;   ///< Vector mode
};

/** Result of one RII run. */
struct RiiResult {
    std::vector<Solution> front;  ///< global Pareto front
    PatternRegistry registry;
    RiiStats stats;

    /**
     * The program the run identified against: the input program, or its
     * vectorized form in Vector mode.
     */
    frontend::EncodedProgram baseProgram;

    /**
     * The last cost evaluation of every costed pattern (computed on the
     * phase's *saturated* graph, where the pattern actually matches).
     * Downstream integration modeling (RoCC) must use these rather than
     * re-matching against the raw base graph.
     */
    std::unordered_map<int64_t, PatternEval> evaluations;

    /** The solution with the highest speedup (the empty one if none). */
    const Solution& best() const;
};

/** Run RII end to end. */
RiiResult runRii(const frontend::EncodedProgram& program,
                 const profile::ModuleProfile& profile,
                 const rules::RulesetLibrary& rules,
                 const RiiConfig& config);

}  // namespace rii
}  // namespace isamore
