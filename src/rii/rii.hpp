/**
 * @file
 * The top-level RII algorithm (paper Fig. 7): phase-oriented iteration
 * over equality saturation, smart anti-unification, hardware-aware
 * selection, and extraction refinement.
 *
 * Phase scheduling (§5.1): phase 1 applies the saturating integer
 * ruleset, phase 2 the saturating float ruleset (both run to saturation),
 * and each subsequent phase applies a rotating slice of n non-saturating
 * rules for at most two iterations.  Every phase restarts from the
 * original (or vectorized) e-graph plus the κ(P_pre) application rewrites
 * of previously selected patterns, which both bounds the e-graph scale
 * and lets later phases generalize over earlier patterns.  Iteration
 * stops when the global Pareto front is unchanged.
 *
 * Modes reproduce the paper's evaluation configurations:
 *  - Default:  boundary sampling, hardware-aware objective
 *  - AstSize:  term-size selection/extraction objective (§7.1.3)
 *  - KDSample: kd-tree pattern sampling (§7.1.3)
 *  - Vector:   pattern vectorization in the first phase (§5.3, §7.1.3)
 *  - NoEqSat:  semantic consideration disabled (§7.1.2 baseline)
 *  - LLMT:     vanilla exhaustive e-graph AU in one monolithic phase
 *              (§7.1.1 baseline; expected to blow its budget)
 */
#pragma once

#include <map>

#include "frontend/encode.hpp"
#include "profile/interp.hpp"
#include "rii/au.hpp"
#include "rii/registry.hpp"
#include "rii/select.hpp"
#include "rii/vectorize.hpp"
#include "rules/rulesets.hpp"

namespace isamore {
namespace rii {

/** RII operating mode. */
enum class Mode { Default, AstSize, KDSample, Vector, NoEqSat, LLMT };

/** Printable mode name. */
const char* modeName(Mode mode);

/** Configuration for one RII run. */
struct RiiConfig {
    Mode mode = Mode::Default;

    /** Maximum number of phases after the two saturating ones. */
    int maxPhases = 6;
    /** Non-saturating rules applied per later phase. */
    size_t rulesPerPhase = 8;

    EqSatLimits eqsat{/*maxNodes=*/20000, /*maxIterations=*/8,
                      /*maxSeconds=*/10.0, /*maxMatchesPerRule=*/1024,
                      /*useBackoff=*/false, /*incrementalSearch=*/true,
                      /*strategy=*/{}};
    AuOptions au;
    SelectOptions select;
    VectorizeOptions vectorize;

    /**
     * Whole-run budget (unlimited by default).  Per-stage budgets are
     * split from it, so its deadline bounds the run end to end and its
     * unit allowance bounds total rewrite applications + AU candidates.
     * Tripping it degrades the run (remaining phases are skipped and
     * recorded in RunDiagnostics); it never aborts.
     */
    BudgetSpec budget;

    /**
     * Optional enclosing budget the run budget is split from.  The
     * server threads each request's root budget through here so the
     * request deadline clamps the run and a watchdog cancel() on the
     * root stops every stage at its next charge/poll.  Must outlive the
     * runRii call; nullptr (the default, and every CLI path) keeps the
     * run budget a root.
     */
    Budget* parentBudget = nullptr;

    /** Per-invocation custom-instruction overhead (RoCC issue+writeback). */
    double invokeOverheadNs = 0.5;
    /** Candidates kept for selection (<= 64). */
    size_t maxCostedCandidates = 48;

    /**
     * Extra candidate patterns injected into the first phase, before the
     * phase's own AU sweep: each is registered and costed against this
     * workload exactly like a mined candidate, which is how a corpus's
     * accumulated library cross-matches patterns mined from one workload
     * against another.  Opt-in (empty by default): seeds widen the
     * candidate set, so a seeded run's output is *not* comparable to an
     * unseeded one -- never enable on golden-checked runs.
     */
    std::vector<TermPtr> seedPatterns;

    RiiConfig()
    {
        au.maxResultPatterns = 300;
    }

    /** Derive the per-mode configuration from a base config. */
    static RiiConfig forMode(Mode mode);
};

/** Statistics of one RII run (feeds Tables 2 and 3). */
struct RiiStats {
    size_t origNodes = 0;
    size_t origClasses = 0;
    size_t peakNodes = 0;
    size_t peakClasses = 0;
    size_t rawCandidates = 0;  ///< raw AU candidates over all phases
    size_t dedupedCandidates = 0;  ///< |P_cand| after sampling + dedup
    size_t phasesRun = 0;
    bool auAborted = false;    ///< exhausted the candidate budget (LLMT)
    double seconds = 0.0;
    size_t peakRssBytes = 0;
    size_t packsCreated = 0;   ///< Vector mode

    /**
     * Per-rule EqSat totals summed over every saturation run of the whole
     * pipeline (phase runs and the kappa-application runs), keyed by rule
     * name.  Thread-count deterministic; surfaced by the CLI report.
     */
    std::map<std::string, RuleTotals> ruleTotals;
};

/**
 * Degradation record of one RII run: per-stage stop reasons plus counts
 * of every unit of work that was dropped rather than completed.  A run
 * with degraded() == false produced exactly what an unlimited, fault-free
 * run would have; a degraded run's front is still valid and internally
 * Pareto-consistent, it may just be missing solutions.
 */
struct RunDiagnostics {
    /** Stop reason of the most recent EqSat sweep. */
    StopReason lastEqSatStop = StopReason::Saturated;
    size_t eqsatNodeTrips = 0;   ///< sweeps stopped by the node limit
    size_t eqsatTimeouts = 0;    ///< sweeps stopped by a deadline
    size_t skippedRules = 0;     ///< rewrite rules dropped after faults
    size_t skippedPairs = 0;     ///< AU pairs dropped (budget/fault)
    size_t skippedPatterns = 0;  ///< candidates dropped during costing
    size_t skippedPhases = 0;    ///< phases abandoned after a stage failure
    size_t faultsInjected = 0;   ///< injected faults fired during the run
    bool auBudgetTripped = false;     ///< AU candidate budget blown
    bool auTimedOut = false;          ///< an AU sweep deadline tripped
    bool selectionTruncated = false;  ///< selection stopped early
    bool budgetExhausted = false;     ///< the whole-run budget expired

    /**
     * Whether anything was dropped.  EqSat node/iteration-limit stops are
     * normal bounded-saturation operation and do NOT count as
     * degradation; skipped work units, fired faults, and tripped budgets
     * do.
     */
    bool degraded() const;

    /** Multi-line per-stage rendering (for reports and the CLI). */
    std::string summary() const;
};

/** Result of one RII run. */
struct RiiResult {
    std::vector<Solution> front;  ///< global Pareto front
    PatternRegistry registry;
    RiiStats stats;
    RunDiagnostics diagnostics;

    /**
     * The program the run identified against: the input program, or its
     * vectorized form in Vector mode.
     */
    frontend::EncodedProgram baseProgram;

    /**
     * The last cost evaluation of every costed pattern (computed on the
     * phase's *saturated* graph, where the pattern actually matches).
     * Downstream integration modeling (RoCC) must use these rather than
     * re-matching against the raw base graph.
     */
    std::unordered_map<int64_t, PatternEval> evaluations;

    /** The solution with the highest speedup (the empty one if none). */
    const Solution& best() const;
};

/** Run RII end to end. */
RiiResult runRii(const frontend::EncodedProgram& program,
                 const profile::ModuleProfile& profile,
                 const rules::RulesetLibrary& rules,
                 const RiiConfig& config);

}  // namespace rii
}  // namespace isamore
