#include "rii/rii.hpp"

#include <algorithm>
#include <new>
#include <sstream>
#include <unordered_set>

#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"

namespace isamore {
namespace rii {
namespace {

/** A sortable identity of a Pareto front (for termination detection). */
std::string
frontSignature(const std::vector<Solution>& front)
{
    std::string sig;
    for (const Solution& s : front) {
        std::vector<int64_t> ids = s.patternIds;
        std::sort(ids.begin(), ids.end());
        for (int64_t id : ids) {
            sig += std::to_string(id);
            sig += ',';
        }
        sig += '|';
    }
    return sig;
}

/** Merge new solutions into the global front. */
std::vector<Solution>
mergeFronts(std::vector<Solution> global, std::vector<Solution> fresh)
{
    for (Solution& s : fresh) {
        global.push_back(std::move(s));
    }
    return paretoFilter(std::move(global));
}

/** Patterns referenced by any solution on the front. */
std::vector<int64_t>
frontPatterns(const std::vector<Solution>& front)
{
    std::vector<int64_t> ids;
    for (const Solution& s : front) {
        for (int64_t id : s.patternIds) {
            ids.push_back(id);
        }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

}  // namespace

const char*
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Default:
        return "Default";
      case Mode::AstSize:
        return "AstSize";
      case Mode::KDSample:
        return "KDSample";
      case Mode::Vector:
        return "Vector";
      case Mode::NoEqSat:
        return "NoEqSat";
      case Mode::LLMT:
        return "LLMT";
    }
    return "?";
}

RiiConfig
RiiConfig::forMode(Mode mode)
{
    RiiConfig cfg;
    cfg.mode = mode;
    switch (mode) {
      case Mode::Default:
        break;
      case Mode::AstSize:
        cfg.select.astSizeObjective = true;
        break;
      case Mode::KDSample:
        cfg.au.sampling = Sampling::KdTree;
        cfg.au.maxPatternsPerPair = 16;
        break;
      case Mode::Vector:
        // Vectorized reductions (e.g. the packed dot product of the
        // BitNet study) nest lane decodes under a mad chain; allow AU to
        // reach through them.
        cfg.au.maxDepth = 14;
        break;
      case Mode::NoEqSat:
        break;
      case Mode::LLMT:
        cfg.au.sampling = Sampling::Exhaustive;
        cfg.au.typeFilter = false;
        cfg.au.hashFilter = false;
        cfg.au.maxCandidates = 600000;
        cfg.au.maxResultPatterns = 600000;
        cfg.maxPhases = 1;
        cfg.eqsat.maxIterations = 16;
        break;
    }
    return cfg;
}

bool
RunDiagnostics::degraded() const
{
    return skippedRules > 0 || skippedPairs > 0 || skippedPatterns > 0 ||
           skippedPhases > 0 || faultsInjected > 0 || auBudgetTripped ||
           auTimedOut || selectionTruncated || budgetExhausted;
}

std::string
RunDiagnostics::summary() const
{
    std::ostringstream os;
    os << "eqsat:  lastStop=" << stopReasonName(lastEqSatStop)
       << " nodeTrips=" << eqsatNodeTrips
       << " timeouts=" << eqsatTimeouts
       << " skippedRules=" << skippedRules << "\n"
       << "au:     skippedPairs=" << skippedPairs
       << " budgetTripped=" << (auBudgetTripped ? "yes" : "no")
       << " timedOut=" << (auTimedOut ? "yes" : "no") << "\n"
       << "select: truncated=" << (selectionTruncated ? "yes" : "no")
       << " skippedPatterns=" << skippedPatterns << "\n"
       << "run:    skippedPhases=" << skippedPhases
       << " faultsInjected=" << faultsInjected
       << " budgetExhausted=" << (budgetExhausted ? "yes" : "no")
       << " degraded=" << (degraded() ? "yes" : "no") << "\n";
    return os.str();
}

const Solution&
RiiResult::best() const
{
    static const Solution empty;
    const Solution* best = &empty;
    for (const Solution& s : front) {
        if (s.speedup >= best->speedup) {
            best = &s;
        }
    }
    return *best;
}

RiiResult
runRii(const frontend::EncodedProgram& program,
       const profile::ModuleProfile& profile,
       const rules::RulesetLibrary& rules, const RiiConfig& config)
{
    TELEM_SPAN("rii.run", "rii");
    Stopwatch watch;
    RiiResult result;
    RiiStats& stats = result.stats;
    RunDiagnostics& diag = result.diagnostics;
    auto foldRuleTotals = [&stats](const EqSatStats& eq) {
        for (const auto& [name, totals] : eq.perRule) {
            stats.ruleTotals[name] += totals;
        }
    };
    Budget runBudget(config.budget, config.parentBudget);
    const uint64_t faultsBefore = fault::Registry::instance().firedCount();

    // Vector mode runs pattern vectorization up front (its phase applies
    // the vector ruleset, per Fig. 7 line 8).  The paper's hybrid
    // scalar-vector e-graph keeps both forms alive; here the compressed
    // vectorized graph commits to one scheme, so Vector mode runs the
    // phase loop over BOTH the vectorized and the original scalar graphs
    // and merges their fronts, which preserves the "comprehensively
    // considering vectorized and scalar candidates" behaviour.
    std::vector<const frontend::EncodedProgram*> bases;
    frontend::EncodedProgram vectorized;
    if (config.mode == Mode::Vector) {
        // A faulty vectorizer degrades Vector mode to the scalar-only
        // phase loop instead of killing the run.
        try {
            TELEM_SPAN("rii.vectorize", "rii");
            VectorizeResult vr = vectorizeProgram(
                program, rules.vector(), config.vectorize);
            vectorized = std::move(vr.program);
            stats.packsCreated = vr.packsCreated;
            bases.push_back(&vectorized);
        } catch (const InternalError&) {
            ++diag.skippedPhases;
        } catch (const std::bad_alloc&) {
            ++diag.skippedPhases;
        }
    }
    bases.push_back(&program);
    stats.origNodes = bases.front()->egraph.numNodes();
    stats.origClasses = bases.front()->egraph.numClasses();

    // Phase rulesets.
    const auto int_sat = rules.intSat();
    const auto float_sat = rules.floatSat();
    const auto non_sat = rules.nonSat();

    for (const frontend::EncodedProgram* base : bases) {
        CostModel cost(*base, profile, result.registry,
                       config.invokeOverheadNs);
        std::string last_signature;
        const int total_phases = 2 + config.maxPhases;
        for (int phase = 0; phase < total_phases; ++phase) {
            TELEM_SPAN_ARGS("rii.phase", "rii",
                            "\"phase\": " + std::to_string(phase));
            // Whole-run budget gate: remaining phases are dropped, not
            // aborted, once it expires.
            if (fault::tripped("rii.phase") || !runBudget.ok()) {
                diag.budgetExhausted = true;
                diag.skippedPhases +=
                    static_cast<size_t>(total_phases - phase);
                break;
            }
            ++stats.phasesRun;

            // Ruleset for this phase.  The node budget scales with the
            // original graph so the paper's peak/original ratio holds at
            // every input size.
            std::vector<RewriteRule> phase_rules;
            EqSatLimits limits = config.eqsat;
            if (config.mode != Mode::LLMT) {
                limits.maxNodes =
                    std::min(limits.maxNodes,
                             std::max<size_t>(1500, 4 * stats.origNodes));
            }
            if (config.mode == Mode::LLMT) {
                phase_rules = rules.select(0, kRuleVector);  // everything
            } else if (config.mode == Mode::NoEqSat) {
                phase_rules.clear();  // semantics disabled
            } else if (phase == 0) {
                phase_rules = int_sat;
            } else if (phase == 1) {
                phase_rules = float_sat;
            } else if (!non_sat.empty()) {
                // Rotating slice of non-saturating rules, applied twice.
                const size_t n = config.rulesPerPhase;
                const size_t start =
                    (static_cast<size_t>(phase - 2) * n) % non_sat.size();
                for (size_t k = 0; k < n && k < non_sat.size(); ++k) {
                    phase_rules.push_back(
                        non_sat[(start + k) % non_sat.size()]);
                }
                limits.maxIterations = 2;
                // The rotating-slice machinery is itself a phasing
                // discipline; a phased strategy's own iteration budgets
                // would override the 2-sweep cap above, so only its
                // adaptive (pruning/replay) core rides along here.
                limits.strategy.phases.clear();
            }

            // Start the phase from the base graph plus kappa(P_pre).
            frontend::EncodedProgram work = *base;
            const auto pre_patterns = frontPatterns(result.front);
            for (RewriteRule& r :
                 result.registry.applicationRules(pre_patterns)) {
                phase_rules.push_back(std::move(r));
            }
            EqSatStats eq = runEqSat(work.egraph, phase_rules, limits,
                                     &runBudget);
            foldRuleTotals(eq);
            diag.lastEqSatStop = eq.stopReason;
            diag.skippedRules += eq.skippedRules;
            if (eq.stopReason == StopReason::NodeLimit) {
                ++diag.eqsatNodeTrips;
            } else if (eq.stopReason == StopReason::TimeLimit) {
                ++diag.eqsatTimeouts;
            }
            stats.peakNodes = std::max(
                {stats.peakNodes, eq.peakNodes, work.egraph.numNodes()});
            stats.peakClasses =
                std::max({stats.peakClasses, eq.peakClasses,
                          work.egraph.numClasses()});

            // Smart AU identification.  A sweep that dies wholesale
            // (invariant trip, allocation failure) costs this phase only;
            // per-pair failures are already absorbed inside the sweep.
            AuResult au;
            try {
                au = identifyPatterns(work.egraph, config.au, &runBudget);
            } catch (const InternalError&) {
                ++diag.skippedPhases;
                continue;
            } catch (const std::bad_alloc&) {
                ++diag.skippedPhases;
                continue;
            }
            diag.skippedPairs += au.stats.skippedPairs;
            diag.auTimedOut = diag.auTimedOut || au.stats.timedOut;
            stats.rawCandidates += au.stats.rawCandidates;
            stats.dedupedCandidates += au.patterns.size();
            if (au.stats.aborted) {
                stats.auAborted = true;
                // The configured candidate cap is experiment policy (the
                // LLMT baseline blows it by design) and stays out of the
                // degradation report; only an exhausted *run* budget
                // counts as a degraded abort.
                if (!runBudget.ok()) {
                    diag.auBudgetTripped = true;
                }
                break;  // the LLMT "out of memory" analogue
            }

            // Cost the candidates and keep the best few.  A candidate
            // whose evaluation fails is dropped, not fatal.
            std::vector<PatternEval> costed;
            {
                TELEM_SPAN("rii.cost", "rii");
                auto costOne = [&](const TermPtr& p) {
                    try {
                        int64_t id = result.registry.add(p);
                        costed.push_back(cost.evaluate(id, work.egraph));
                    } catch (const InternalError&) {
                        ++diag.skippedPatterns;
                    } catch (const std::bad_alloc&) {
                        ++diag.skippedPatterns;
                    }
                };
                // Corpus-seeded candidates enter once, ahead of the first
                // phase's own crop, and then compete on cost like any
                // mined pattern.
                if (phase == 0) {
                    for (const TermPtr& p : config.seedPatterns) {
                        costOne(p);
                    }
                }
                for (const TermPtr& p : au.patterns) {
                    costOne(p);
                }
            }
            std::sort(costed.begin(), costed.end(),
                      [](const PatternEval& a, const PatternEval& b) {
                          return a.deltaNs > b.deltaNs;
                      });
            while (costed.size() > config.maxCostedCandidates) {
                costed.pop_back();
            }
            while (!costed.empty() && costed.back().deltaNs <= 0 &&
                   costed.size() > 1) {
                costed.pop_back();
            }
            // Previously selected patterns stay selectable in this phase.
            {
                std::unordered_set<int64_t> have;
                for (const PatternEval& pe : costed) {
                    have.insert(pe.id);
                }
                for (int64_t id : pre_patterns) {
                    if (have.count(id) == 0 && costed.size() < 64) {
                        costed.push_back(cost.evaluate(id, work.egraph));
                    }
                }
            }
            if (costed.empty()) {
                continue;
            }

            // Introduce App nodes for the costed candidates.
            std::vector<int64_t> ids;
            for (const PatternEval& pe : costed) {
                ids.push_back(pe.id);
                // Keep the strongest evaluation: a pattern selected in
                // one base (e.g. the vectorized graph) re-costs to zero
                // uses under the other base, which must not clobber it.
                auto slot = result.evaluations.find(pe.id);
                if (slot == result.evaluations.end() ||
                    pe.deltaNs > slot->second.deltaNs) {
                    result.evaluations[pe.id] = pe;
                }
            }
            EqSatLimits app_limits;
            app_limits.maxIterations = 1;
            app_limits.maxNodes = limits.maxNodes * 2;
            foldRuleTotals(runEqSat(work.egraph,
                                    result.registry.applicationRules(ids),
                                    app_limits, &runBudget));
            stats.peakNodes =
                std::max(stats.peakNodes, work.egraph.numNodes());
            stats.peakClasses =
                std::max(stats.peakClasses, work.egraph.numClasses());

            // Select, refine, and merge into the global front.  Selection
            // failure costs this phase's solutions only; the global front
            // from earlier phases survives.
            SelectOutcome selOutcome;
            std::vector<Solution> solutions;
            try {
                TELEM_SPAN("rii.select", "rii");
                solutions = selectAndRefine(work.egraph, work.root,
                                            costed, cost, config.select,
                                            &runBudget, &selOutcome);
            } catch (const InternalError&) {
                ++diag.skippedPhases;
                continue;
            } catch (const std::bad_alloc&) {
                ++diag.skippedPhases;
                continue;
            }
            diag.selectionTruncated =
                diag.selectionTruncated || selOutcome.truncated;
            result.front = mergeFronts(std::move(result.front),
                                       std::move(solutions));

            std::string signature = frontSignature(result.front);
            if (phase >= 2 && signature == last_signature) {
                break;  // solution set unchanged: stop iterating
            }
            last_signature = std::move(signature);
        }
        if (stats.auAborted) {
            break;
        }
    }

    stats.seconds = watch.seconds();
    stats.peakRssBytes = peakRssBytes();
    diag.faultsInjected =
        fault::Registry::instance().firedCount() - faultsBefore;
    result.baseProgram = *bases.front();
    return result;
}

}  // namespace rii
}  // namespace isamore
