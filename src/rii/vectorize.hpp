/**
 * @file
 * AU-based pattern vectorization (paper §5.3).
 *
 * Three steps over an encoded scalar program:
 *  1. *Seed packing*: smart AU finds recurring scalar patterns; instances
 *     rooted in the same basic block (by site provenance) become a seed
 *     pack, unified under a new Vec e-node.  Couple edges Get(vec, i) are
 *     merged with the lane classes, deliberately creating the
 *     Get->Vec->Get cycles the paper describes.
 *  2. *Pack expansion*: equality saturation with the vector lift ruleset
 *     recovers VecOp constructors over the packs.
 *  3. *Acyclic pruning*: a greedy DLP-favoring extraction picks one
 *     concrete vectorization scheme; re-encoding the extracted program
 *     (the Enumo-style compress) yields a lightweight acyclic hybrid
 *     scalar-vector e-graph.  Site provenance is carried through, and
 *     VecOp classes inherit their lanes' sites so the cost model sees
 *     vector uses.
 */
#pragma once

#include "frontend/encode.hpp"
#include "rii/au.hpp"
#include "egraph/rewrite.hpp"

namespace isamore {
namespace rii {

/** Options for one vectorization pass. */
struct VectorizeOptions {
    int lanes = 4;            ///< preferred pack width (falls back to 2)
    size_t maxPacks = 64;     ///< seed-pack budget
    AuOptions seedAu;         ///< AU configuration for seed finding
    EqSatLimits liftLimits;   ///< pack-expansion EqSat limits

    VectorizeOptions()
    {
        seedAu.maxResultPatterns = 64;
        seedAu.maxDepth = 4;
        liftLimits.maxIterations = 4;
        liftLimits.maxNodes = 60000;
    }
};

/** Result of vectorization. */
struct VectorizeResult {
    frontend::EncodedProgram program;  ///< acyclic hybrid program
    size_t packsCreated = 0;
    size_t vecOpsInResult = 0;
};

/** Run the vectorization pipeline. */
VectorizeResult vectorizeProgram(const frontend::EncodedProgram& prog,
                                 const std::vector<RewriteRule>& liftRules,
                                 const VectorizeOptions& options);

}  // namespace rii
}  // namespace isamore
