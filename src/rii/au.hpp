/**
 * @file
 * E-graph anti-unification with the smart-AU heuristics (paper §5.2) and
 * the vanilla exhaustive LLMT mode (paper §2.2, used as the Table 2
 * baseline).
 *
 * Pair selection: candidate e-class pairs must agree on result type and be
 * structurally similar (Hamming distance of the 64-bit structural hashes
 * below a threshold).  Large graphs use a sorted-hash window ("banding")
 * instead of the quadratic sweep; exact-hash buckets are always paired.
 *
 * Pattern sampling: per e-node pair, the Cartesian product of child AU
 * sets is reduced by either the *boundary* strategy (keep the feature-
 * minimal and feature-maximal patterns) or the *kd-tree* strategy
 * (partition the child-feature space into 2^d cells and take beta evenly
 * spaced patterns per cell).  Exhaustive mode keeps everything and is
 * expected to blow the candidate budget on real inputs.
 */
#pragma once

#include <cstdint>

#include "egraph/analysis.hpp"
#include "dsl/term.hpp"
#include "support/budget.hpp"

namespace isamore {
namespace rii {

/** Pattern sampling strategy (§5.2). */
enum class Sampling {
    Exhaustive,  ///< vanilla LLMT: full Cartesian products
    Boundary,    ///< keep the two extreme patterns per e-node pair
    KdTree,      ///< kd-cell stratified sampling
};

/** What one explored pair contributed to a cached chunk. */
struct AuCachedPair {
    size_t rawCandidates = 0;       ///< candidates the pair enumerated
    std::vector<TermPtr> patterns;  ///< filtered, hole-canonical DAGs
};

/** One recorded AU chunk: a clean shard run, replayable verbatim. */
struct AuCachedChunk {
    std::vector<AuCachedPair> pairs;
    size_t units = 0;      ///< budget charges the cold run made
    size_t memoHits = 0;   ///< shard memo behaviour (telemetry parity)
    size_t memoMisses = 0;
};

/**
 * Cross-run memo of AU chunk results, keyed by a 64-bit *trace
 * signature*: a structural hash of exactly the e-graph state the shard's
 * recursion observes (local class identities in first-visit order, node
 * ops/payloads/arities of matching e-node pairs, representative-term
 * content, memo/cycle/depth events) plus the sweep options.  Equal
 * signatures imply the cold run would reproduce the recorded records
 * byte for byte, so a hit skips the pair enumeration entirely -- across
 * runs, and across workloads whose chunks happen to be isomorphic.
 *
 * Implementations must keep returned chunk pointers stable for the
 * cache's lifetime (the sweep reads them from pool workers) and make
 * lookup/store safe to call concurrently.  The sweep only consults the
 * cache when the run is unconstrained and fault-free; see
 * identifyPatterns.
 */
class AuChunkCache {
 public:
    virtual ~AuChunkCache() = default;

    /** The recorded chunk for @p signature, or nullptr. */
    virtual const AuCachedChunk* lookup(uint64_t signature) const = 0;

    /** Record a clean chunk (first store wins; later stores may drop). */
    virtual void store(uint64_t signature, AuCachedChunk chunk) = 0;
};

/** Options for one anti-unification sweep. */
struct AuOptions {
    Sampling sampling = Sampling::Boundary;

    /** Apply the result-type pairing filter. */
    bool typeFilter = true;
    /** Apply the structural-hash pairing filter. */
    bool hashFilter = true;
    /** Max Hamming distance for a pair to be explored. */
    int hammingThreshold = 32;

    /** Recursion depth bound for AU (holes beyond it). */
    int maxDepth = 8;
    /** Cap on explored e-class pairs. */
    size_t maxPairs = 50000;
    /** Above this class count, use the sorted-hash window instead of the
     *  quadratic pair sweep. */
    size_t quadraticPairLimit = 3000;
    /** Window width for the sorted-hash banding pass. */
    size_t bandingWindow = 48;

    /**
     * Global budget on generated candidate patterns; exceeding it aborts
     * the sweep (the analogue of the paper's 30 GB memory cap that vanilla
     * LLMT blows through).
     */
    size_t maxCandidates = 200000;

    /** Per class-pair cap on surviving sampled patterns. */
    size_t maxPatternsPerPair = 8;
    /** Final cap on deduplicated result patterns. */
    size_t maxResultPatterns = 4096;

    /** kd-tree sampling: split dimensions and per-cell samples. */
    int kdDims = 2;
    int kdBeta = 2;

    /** Candidate filter: minimum operation count of a useful pattern. */
    size_t minOps = 2;

    /** Wall-clock allowance for the whole sweep (unlimited by default);
     *  tripping it stops enumeration and records the rest as skipped. */
    double maxSeconds = kUnlimitedSeconds;

    /**
     * Wall-clock allowance per explored e-class pair (unlimited by
     * default).  A pair that overruns is dropped -- its patterns are
     * discarded and skippedPairs is incremented -- and the sweep
     * continues with the next pair, the per-unit degradation contract.
     */
    double maxSecondsPerPair = kUnlimitedSeconds;

    /**
     * Worker threads for the pair sweep: 0 uses the process-global pool
     * (sized by --threads / ISAMORE_THREADS), 1 forces a serial sweep,
     * any other value runs on a dedicated pool of that size.  The sweep
     * is sharded into fixed-size chunks *independent of this value* and
     * merged in pair order, so the result patterns and stats are
     * identical for every thread count (see DESIGN.md "Threading model").
     * Exhaustive sampling always runs as one serial shard: its
     * candidate-budget abort point is part of the experiment.
     */
    size_t threads = 0;

    /**
     * Optional cross-run chunk memo (see AuChunkCache).  Consulted only
     * when the sweep is unconstrained (no deadlines, an unconstrained
     * budget chain, no armed faults) and sampling is not Exhaustive;
     * replayed chunks are charged against the budget exactly as their
     * cold runs were, so results and stats stay byte-identical.  Not
     * part of the sweep's behavioural fingerprint.  Not owned.
     */
    AuChunkCache* chunkCache = nullptr;
};

/** Statistics from one AU sweep (feeds Table 2). */
struct AuStats {
    size_t pairsConsidered = 0;  ///< pairs examined by the filters
    size_t pairsExplored = 0;    ///< pairs recursed into
    size_t rawCandidates = 0;    ///< |P_cand| before dedup (paper metric)
    /** Pairs dropped by a per-pair deadline, an injected fault, or an
     *  early sweep stop; their patterns are not in the result. */
    size_t skippedPairs = 0;
    bool aborted = false;        ///< blew the candidate budget
    bool timedOut = false;       ///< the sweep deadline tripped
};

/** Result of one AU sweep. */
struct AuResult {
    /** Deduplicated candidate patterns with canonical hole numbering. */
    std::vector<TermPtr> patterns;
    AuStats stats;
};

/**
 * Run anti-unification over all admissible e-class pairs.
 *
 * When @p budget is given, the sweep charges one unit per raw candidate
 * against it and clamps its deadline (from options.maxSeconds) to the
 * budget's.  Over-budget or faulted pairs are skipped and recorded in
 * AuStats::skippedPairs; the sweep never throws for per-pair failures.
 */
AuResult identifyPatterns(const EGraph& egraph, const AuOptions& options,
                          Budget* budget = nullptr);

/**
 * The admissible e-class pair list the sweep will explore, in sweep
 * order (quadratic below AuOptions::quadraticPairLimit classes, the
 * sorted-hash banding window above it).  Deterministic for a given
 * e-graph and options.  When @p stats is given, pairsConsidered is
 * recorded there.  Exposed for the pair-selection regression tests and
 * the bench harness.
 */
std::vector<std::pair<EClassId, EClassId>>
selectAuPairs(const EGraph& egraph, const AuOptions& options,
              AuStats* stats = nullptr);

}  // namespace rii
}  // namespace isamore
