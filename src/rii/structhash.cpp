#include "rii/structhash.hpp"

#include <algorithm>

#include "support/hashing.hpp"

namespace isamore {
namespace rii {
namespace {

/** The uniform hash shared by all leaves (Fig. 8a: literals, arguments
 *  and pattern variables must not influence pairing). */
constexpr uint64_t kUniformLeafHash = 0xA5A5'5A5A'3C3C'C3C3ull;

/** Number of depth bands packed into the 64-bit class hash. */
constexpr int kBands = 4;

/**
 * Depth-banded structural hash.
 *
 * The 64-bit hash is the concatenation of four 16-bit bands, band k being
 * a truncated hash of the class's structure up to depth k+1.  Two classes
 * whose shallow shapes agree but whose deep subterms differ therefore
 * disagree only in the high bands (graded Hamming distance), unlike a
 * single avalanche hash where any difference randomizes all 64 bits.
 * This is what makes the similarity threshold (paper Fig. 8) meaningful.
 */
uint64_t
hashNodeAtLevel(const ENode& node, const EGraph& egraph,
                const ClassMap<uint64_t>& prevLevel)
{
    if (node.isLeaf()) {
        return kUniformLeafHash;
    }
    uint64_t h = mix64(static_cast<uint64_t>(node.op) + 0x517cc1b7);
    // Get indices and VecOp operators distinguish constructors.
    if (node.op == Op::Get || node.op == Op::VecOp) {
        h = hashCombine(h, node.payload.hash());
    }
    for (EClassId child : node.children) {
        auto it = prevLevel.find(egraph.find(child));
        h = hashCombine(h, it == prevLevel.end() ? kUniformLeafHash
                                                 : it->second);
    }
    return h;
}

/** Majority vote of node hashes per bit position. */
uint64_t
voteClassHash(const EClass& cls, const EGraph& egraph,
              const ClassMap<uint64_t>& prevLevel)
{
    int votes[64] = {};
    for (const ENode& node : cls.nodes) {
        uint64_t h = hashNodeAtLevel(node, egraph, prevLevel);
        for (int b = 0; b < 64; ++b) {
            votes[b] += static_cast<int>((h >> b) & 1u);
        }
    }
    uint64_t voted = 0;
    const int size = static_cast<int>(cls.nodes.size());
    for (int b = 0; b < 64; ++b) {
        // Majority with ties rounding up: a two-node class keeps the
        // union of its nodes' bits, so a saturated class stays close to
        // each of its member forms instead of collapsing to zero.
        if (2 * votes[b] >= size && votes[b] > 0) {
            voted |= (1ull << b);
        }
    }
    return voted;
}

}  // namespace

ClassMap<uint64_t>
computeStructHashes(const EGraph& egraph, int rounds)
{
    const auto ids = egraph.classIds();
    const int levels = std::min(rounds, kBands);

    // Level 0: every class looks like a leaf.
    ClassMap<uint64_t> level;
    for (EClassId id : ids) {
        level[id] = kUniformLeafHash;
    }

    ClassMap<uint64_t> banded;
    for (EClassId id : ids) {
        banded[id] = 0;
    }

    // `level` and `next` hold the same key set on every round, so one
    // pair of maps is allocated up front and swapped per level instead
    // of rebuilding a fresh map (and rehashing every class id) each
    // round.
    ClassMap<uint64_t> next;
    next.reserve(ids.size());
    for (int k = 0; k < levels; ++k) {
        for (EClassId id : ids) {
            const uint64_t h = voteClassHash(egraph.cls(id), egraph, level);
            next[id] = h;
            // Pack 16 bits of this level into band k.
            const uint64_t slice =
                (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) & 0xffffull;
            banded[id] |= slice << (16 * k);
        }
        std::swap(level, next);
    }
    return banded;
}

}  // namespace rii
}  // namespace isamore
