#include "rii/vectorize.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_set>

#include "egraph/analysis.hpp"
#include "egraph/ematch.hpp"
#include "egraph/extract.hpp"
#include "support/check.hpp"

namespace isamore {
namespace rii {
namespace {

/**
 * Materialize the best term while recording each node's source class.
 *
 * The DLP-discounted cost function can (rarely) pick a mutually
 * referential set of choices (lane -> Get(vec) -> Vec(lane)); when a
 * cycle is detected through the in-progress set, the current class falls
 * back to its next-cheapest node whose children materialize acyclically —
 * every lane class always has its original scalar node as a ground
 * alternative, so this terminates.
 */
TermPtr
materializeWithClasses(const EGraph& egraph, const Extractor& extractor,
                       EClassId klass,
                       std::unordered_map<EClassId, TermPtr>& memo,
                       std::unordered_map<const Term*, EClassId>& classes,
                       std::unordered_set<EClassId>& inProgress)
{
    klass = egraph.find(klass);
    auto it = memo.find(klass);
    if (it != memo.end()) {
        return it->second;
    }
    if (inProgress.count(klass) != 0) {
        return nullptr;  // cycle: the caller tries another node
    }
    inProgress.insert(klass);

    // Candidate nodes: the extractor's choice first, then the remaining
    // nodes ordered by their (feasible) cost.
    std::vector<const ENode*> order;
    const ENode* chosen = extractor.chosenNode(klass);
    if (chosen != nullptr) {
        order.push_back(chosen);
    }
    std::vector<std::pair<double, const ENode*>> rest;
    for (const ENode& node : egraph.cls(klass).nodes) {
        if (chosen != nullptr && node == *chosen) {
            continue;
        }
        double cost = 0;
        bool feasible = true;
        for (EClassId child : node.children) {
            auto c = extractor.costOf(child);
            if (!c.has_value()) {
                feasible = false;
                break;
            }
            cost += *c;
        }
        if (feasible) {
            rest.emplace_back(cost, &node);
        }
    }
    std::sort(rest.begin(), rest.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [cost, node] : rest) {
        order.push_back(node);
    }

    for (const ENode* node : order) {
        std::vector<TermPtr> children;
        children.reserve(node->children.size());
        bool ok = true;
        for (EClassId child : node->children) {
            TermPtr t = materializeWithClasses(egraph, extractor, child,
                                               memo, classes, inProgress);
            if (t == nullptr) {
                ok = false;
                break;
            }
            children.push_back(std::move(t));
        }
        if (!ok) {
            continue;
        }
        TermPtr term =
            makeTerm(node->op, node->payload, std::move(children));
        inProgress.erase(klass);
        memo.emplace(klass, term);
        classes.emplace(term.get(), klass);
        return term;
    }
    inProgress.erase(klass);
    return nullptr;
}

}  // namespace

VectorizeResult
vectorizeProgram(const frontend::EncodedProgram& prog,
                 const std::vector<RewriteRule>& liftRules,
                 const VectorizeOptions& options)
{
    VectorizeResult result;
    // Work on a copy: packing mutates the graph.
    frontend::EncodedProgram work = prog;
    EGraph& g = work.egraph;

    // ---- Step 1: seed packing ----
    AuResult seeds = identifyPatterns(g, options.seedAu);
    auto siteIndex = work.sitesByClass();

    // Group matched classes by (pattern, function, block).
    size_t packs = 0;
    std::unordered_set<EClassId> packed;
    for (const TermPtr& pattern : seeds.patterns) {
        if (packs >= options.maxPacks) {
            break;
        }
        auto matches = ematchAll(g, pattern, 512);
        std::map<std::pair<int, ir::BlockId>, std::vector<EClassId>> groups;
        for (const EMatch& m : matches) {
            EClassId c = g.find(m.root);
            auto sites = siteIndex.find(c);
            if (sites == siteIndex.end()) {
                continue;
            }
            for (const frontend::Site* s : sites->second) {
                groups[{s->func, s->block}].push_back(c);
            }
        }
        for (auto& [where, classes] : groups) {
            std::sort(classes.begin(), classes.end());
            classes.erase(std::unique(classes.begin(), classes.end()),
                          classes.end());
            // Avoid packing a class twice (overlapping patterns).
            std::vector<EClassId> fresh;
            for (EClassId c : classes) {
                if (packed.count(c) == 0) {
                    fresh.push_back(c);
                }
            }
            // Cut packs of `lanes`, falling back to 2 for a remainder
            // pair.
            size_t i = 0;
            while (fresh.size() - i >=
                       static_cast<size_t>(options.lanes) ||
                   fresh.size() - i >= 2) {
                const size_t width =
                    fresh.size() - i >= static_cast<size_t>(options.lanes)
                        ? static_cast<size_t>(options.lanes)
                        : 2;
                std::vector<EClassId> lanes(fresh.begin() + i,
                                            fresh.begin() + i + width);
                i += width;
                EClassId vec =
                    g.add(ENode(Op::Vec, Payload::none(), lanes));
                // Couple: Get(vec, k) == lane k (creates the cycles the
                // acyclic pruning later removes).
                for (size_t k = 0; k < lanes.size(); ++k) {
                    EClassId got = g.add(
                        ENode(Op::Get,
                              Payload::ofInt(static_cast<int64_t>(k)),
                              {vec}));
                    g.merge(got, lanes[k]);
                }
                for (EClassId c : lanes) {
                    packed.insert(c);
                }
                ++packs;
                if (packs >= options.maxPacks) {
                    break;
                }
            }
            if (packs >= options.maxPacks) {
                break;
            }
        }
    }
    g.rebuild();
    result.packsCreated = packs;

    // ---- Step 2: pack expansion (lift rewrites) ----
    runEqSat(g, liftRules, options.liftLimits);

    // ---- Step 3: acyclic pruning ----
    // Greedy extraction favoring vector constructors of high DLP.
    // Tree extraction double-counts shared children, which would make the
    // Get(VecOp(...)) route look `lanes` times more expensive than it is.
    // The Get discount (~1/lanes) restores the amortized economics so the
    // extractor favors high-DLP vector forms, per the paper's "custom cost
    // function that deliberately favors vector constructors".
    auto dlpCost = [](const ENode& node,
                      const std::vector<double>& childCosts) -> double {
        double children = 0;
        for (double c : childCosts) {
            children += c;
        }
        switch (node.op) {
          case Op::VecOp:
            return 0.3 + children;  // strongly preferred
          case Op::Vec:
            return 0.4 + children;
          case Op::Get:
            return 0.1 + 0.28 * children;
          default:
            return 1.0 + children;
        }
    };
    Extractor extractor(g, dlpCost);
    ISAMORE_CHECK_MSG(extractor.costOf(work.root).has_value(),
                      "program root became unextractable after packing");

    std::unordered_map<EClassId, TermPtr> memo;
    std::unordered_map<const Term*, EClassId> termClasses;
    std::unordered_set<EClassId> inProgress;
    TermPtr program = materializeWithClasses(g, extractor, work.root, memo,
                                             termClasses, inProgress);
    ISAMORE_CHECK_MSG(program != nullptr,
                      "vectorized program has no acyclic derivation");

    // Compress: re-encode the extracted hybrid program into a fresh
    // e-graph, carrying provenance.
    frontend::EncodedProgram out;
    std::unordered_map<const Term*, EClassId> newClasses;
    std::unordered_map<EClassId, std::vector<const frontend::Site*>> oldSites =
        work.sitesByClass();

    // Recursive add with provenance transfer.
    std::function<EClassId(const TermPtr&)> addTerm =
        [&](const TermPtr& term) -> EClassId {
        auto it = newClasses.find(term.get());
        if (it != newClasses.end()) {
            return it->second;
        }
        std::vector<EClassId> children;
        children.reserve(term->children.size());
        for (const auto& child : term->children) {
            children.push_back(addTerm(child));
        }
        EClassId id = out.egraph.add(
            ENode(term->op, term->payload, std::move(children)));
        newClasses.emplace(term.get(), id);

        // Transfer the old class's sites.
        auto oc = termClasses.find(term.get());
        if (oc != termClasses.end()) {
            auto sites = oldSites.find(g.find(oc->second));
            if (sites != oldSites.end()) {
                for (const frontend::Site* s : sites->second) {
                    out.sites.push_back(
                        frontend::Site{id, s->func, s->block});
                }
            }
        }
        // VecOp nodes inherit their first Vec child's lane sites so the
        // cost model sees one use per lane.
        if (term->op == Op::VecOp) {
            for (const auto& child : term->children) {
                if (child->op != Op::Vec) {
                    continue;
                }
                for (const auto& lane : child->children) {
                    auto lc = termClasses.find(lane.get());
                    if (lc == termClasses.end()) {
                        continue;
                    }
                    auto sites = oldSites.find(g.find(lc->second));
                    if (sites == oldSites.end()) {
                        continue;
                    }
                    for (const frontend::Site* s : sites->second) {
                        out.sites.push_back(
                            frontend::Site{id, s->func, s->block});
                    }
                }
                break;
            }
            ++result.vecOpsInResult;
        }
        return id;
    };

    out.root = addTerm(program);
    // Function roots: re-resolve through the extracted program's root
    // List children.
    for (const auto& child : program->children) {
        out.functionRoots.push_back(newClasses.at(child.get()));
    }
    out.egraph.rebuild();
    result.program = std::move(out);
    return result;
}

}  // namespace rii
}  // namespace isamore
