/**
 * @file
 * Pattern registry: stable identities for candidate patterns across RII
 * phases, plus the κ(P) pattern-application rewrites (paper Fig. 7).
 *
 * κ(p) rewrites an instance of p's body into App(PatRef(p), args...),
 * unioned with the matched class, which is how identified patterns become
 * visible to the Pareto selection analysis and to later phases (enabling
 * patterns-over-patterns discovery).
 */
#pragma once

#include <unordered_map>

#include "egraph/rewrite.hpp"

namespace isamore {
namespace rii {

/** Registry of identified patterns; ids are dense and stable. */
class PatternRegistry {
 public:
    /** Register (or find) the pattern with canonical body @p body. */
    int64_t add(const TermPtr& body);

    /** Body of pattern @p id. @throws InternalError for unknown ids. */
    const TermPtr& body(int64_t id) const;

    /**
     * Scheduling view of pattern @p id's body: hole-spine nodes fresh
     * per occurrence, hole-free subtrees carrying the sharing the body
     * arrived with (see canonicalizeHolesUninterned).  The HLS
     * estimator charges area per distinct pointer, so it must schedule
     * this view, not the hash-consed canonical body.
     */
    const TermPtr& costBody(int64_t id) const;

    /** Whether @p id is registered. */
    bool contains(int64_t id) const;

    size_t size() const { return bodies_.size(); }

    /** Resolver closure for rewriting and the DSL evaluator. */
    std::function<TermPtr(int64_t)> resolver() const;

    /** Resolver over costBody() views, for the HLS estimator. */
    std::function<TermPtr(int64_t)> costResolver() const;

    /** The κ rewrite for pattern @p id: body => App(PatRef(id), holes). */
    RewriteRule applicationRule(int64_t id) const;

    /** κ rewrites for a set of patterns. */
    std::vector<RewriteRule>
    applicationRules(const std::vector<int64_t>& ids) const;

 private:
    std::vector<TermPtr> bodies_;
    /** Per-id scheduling views, index-aligned with bodies_. */
    std::vector<TermPtr> costBodies_;
    /**
     * Interned canonical body -> id.  Hash-consing makes the canonical
     * body pointer a complete structural key, replacing the
     * termToString() serialization this map used before the interner.
     */
    std::unordered_map<const Term*, int64_t> byKey_;
};

}  // namespace rii
}  // namespace isamore
