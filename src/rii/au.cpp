#include "rii/au.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "dsl/intern.hpp"
#include "egraph/extract.hpp"
#include "hls/estimator.hpp"
#include "rii/structhash.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/hashing.hpp"
#include "support/pool.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"

namespace isamore {
namespace rii {
namespace {

/** Key for memoizing AU over unordered class pairs. */
struct PairKey {
    EClassId a;
    EClassId b;
    bool operator==(const PairKey& o) const { return a == o.a && b == o.b; }
};
struct PairKeyHash {
    size_t
    operator()(const PairKey& k) const
    {
        return hashCombine(mix64(k.a), k.b);
    }
};

/**
 * Structural hash/equality for deduplicating canonical patterns.  With
 * the hash-consed term layer both are O(1): the hash is a cached field
 * and equality a pointer compare for interned terms.
 */
struct TermPtrHash {
    size_t
    operator()(const TermPtr& term) const
    {
        return static_cast<size_t>(term->hash);
    }
};
struct TermPtrEq {
    bool
    operator()(const TermPtr& a, const TermPtr& b) const
    {
        return termEquals(a, b);
    }
};

/**
 * Whether a candidate pattern is well formed: App nodes must carry a
 * concrete PatRef head (anti-unifying two different patterns' App nodes
 * can produce a hole in head position, which is not an instruction).
 */
bool
patternWellFormed(const TermPtr& term, bool isAppHead = false)
{
    if (term->op == Op::PatRef) {
        return isAppHead;
    }
    if (term->op == Op::App) {
        if (term->children.empty() ||
            !patternWellFormed(term->children[0], true)) {
            return false;
        }
        for (size_t i = 1; i < term->children.size(); ++i) {
            if (!patternWellFormed(term->children[i])) {
                return false;
            }
        }
        return true;
    }
    for (const auto& child : term->children) {
        if (!patternWellFormed(child)) {
            return false;
        }
    }
    return true;
}

/** Admissible-pair selection (the filters of paper §5.2). */
class PairSelector {
 public:
    PairSelector(const EGraph& egraph, const AuOptions& options)
        : egraph_(egraph), options_(options)
    {
        ids_ = egraph.classIds();
        if (options_.typeFilter) {
            types_ = computeClassTypes(egraph_);
        }
        if (options_.hashFilter) {
            hashes_ = computeStructHashes(egraph_);
        }
    }

    size_t pairsConsidered() const { return pairsConsidered_; }

    std::vector<std::pair<EClassId, EClassId>>
    select()
    {
        std::vector<std::pair<EClassId, EClassId>> pairs;
        auto push = [&](EClassId a, EClassId b) {
            if (pairs.size() < options_.maxPairs && pairAdmissible(a, b)) {
                pairs.emplace_back(a, b);
            }
        };

        if (!options_.hashFilter ||
            ids_.size() <= options_.quadraticPairLimit) {
            for (size_t i = 0; i < ids_.size(); ++i) {
                for (size_t j = i + 1; j < ids_.size(); ++j) {
                    if (pairs.size() >= options_.maxPairs) {
                        return pairs;
                    }
                    push(ids_[i], ids_[j]);
                }
            }
            return pairs;
        }

        // Banding for large graphs: sort by structural hash and compare
        // each class with a window of hash neighbours (exact-duplicate
        // buckets are contiguous and always fully paired).
        std::vector<EClassId> order = ids_;
        std::sort(order.begin(), order.end(),
                  [&](EClassId x, EClassId y) {
                      return hashes_.at(x) < hashes_.at(y);
                  });
        for (size_t i = 0; i < order.size(); ++i) {
            const size_t end =
                std::min(order.size(), i + 1 + options_.bandingWindow);
            for (size_t j = i + 1; j < end; ++j) {
                if (pairs.size() >= options_.maxPairs) {
                    return pairs;
                }
                push(order[i], order[j]);
            }
        }
        return pairs;
    }

 private:
    bool
    pairAdmissible(EClassId a, EClassId b)
    {
        ++pairsConsidered_;
        if (leafOnly(a) || leafOnly(b)) {
            return false;
        }
        if (options_.typeFilter) {
            Type ta = types_.at(a);
            Type tb = types_.at(b);
            if (ta.isBottom() || tb.isBottom() || ta != tb) {
                return false;
            }
        }
        if (options_.hashFilter &&
            structDistance(hashes_.at(a), hashes_.at(b)) >
                options_.hammingThreshold) {
            return false;
        }
        return true;
    }

    bool
    leafOnly(EClassId id)
    {
        for (const ENode& n : egraph_.cls(id).nodes) {
            if (!n.isLeaf()) {
                return false;
            }
        }
        return true;
    }

    const EGraph& egraph_;
    const AuOptions& options_;
    std::vector<EClassId> ids_;
    ClassMap<Type> types_;
    ClassMap<uint64_t> hashes_;
    size_t pairsConsidered_ = 0;
};

/** Immutable per-sweep data shared (read-only) by every shard. */
struct SweepContext {
    const EGraph& egraph;
    const AuOptions& options;
    const ClassMap<TermPtr>& reprs;  ///< small representatives, AU(a, a)
};

/** What one explored pair contributed, recorded in sweep order. */
struct PairRecord {
    bool skipped = false;       ///< fault / per-pair deadline / exception
    size_t rawCandidates = 0;   ///< candidates enumerated for this pair
    std::vector<TermPtr> patterns;  ///< filtered, hole-canonical, un-deduped
};

/** One chunk's outcome: a prefix of its pair range plus why it ended. */
struct ChunkOutcome {
    std::vector<PairRecord> records;
    bool stopped = false;  ///< sweep deadline / sweep fault: rest skipped
    bool aborted = false;  ///< candidate budget blew (last record partial)
    // Shard memo behaviour over this chunk (telemetry; deterministic for
    // a full chunk because the memo resets at every chunk boundary).
    size_t memoHits = 0;
    size_t memoMisses = 0;
    /** Trace signature (0 unless the chunk cache was consulted). */
    uint64_t signature = 0;
    /** Whether the records came from the chunk cache, not a cold run. */
    bool replayed = false;
};

/**
 * Topology-aware content hash of a term DAG: every distinct node gets a
 * local index in first-visit order, so internal sharing is part of the
 * hash.  Needed because the feature model downstream counts hardware
 * per distinct pointer -- two reps with equal content but different
 * sharing are observably different.
 */
uint64_t
topologyHash(const TermPtr& term)
{
    std::unordered_map<const Term*, uint64_t> ids;
    uint64_t hash = mix64(0x746f706full);  // 'topo'
    const std::function<void(const TermPtr&)> walk =
        [&](const TermPtr& t) {
            const auto [it, fresh] = ids.emplace(t.get(), ids.size());
            if (!fresh) {
                hash = hashCombine(hash, 0xB0);
                hash = hashCombine(hash, it->second);
                return;
            }
            hash = hashCombine(hash, 0xB1);
            hash = hashCombine(hash, static_cast<uint64_t>(t->op));
            hash = hashCombine(hash, t->payload.hash());
            hash = hashCombine(hash, t->children.size());
            for (const TermPtr& child : t->children) {
                walk(child);
            }
        };
    walk(term);
    return hash;
}

/** The AuOptions knobs that shape a shard's records (threads and the
 *  merge-level caps deliberately excluded). */
uint64_t
auOptionsFingerprint(const AuOptions& o)
{
    uint64_t h = mix64(0x61754f70ull);  // 'auOp'
    h = hashCombine(h, static_cast<uint64_t>(o.sampling));
    h = hashCombine(h, static_cast<uint64_t>(o.maxDepth));
    h = hashCombine(h, o.maxPatternsPerPair);
    h = hashCombine(h, o.minOps);
    h = hashCombine(h, static_cast<uint64_t>(o.kdDims));
    h = hashCombine(h, static_cast<uint64_t>(o.kdBeta));
    h = hashCombine(h, o.maxCandidates);
    return h;
}

/**
 * Mirror of AuShard's recursion that hashes -- instead of computing --
 * everything the shard's result depends on: the pair sequence with
 * class identities numbered in first-visit order (so absolute class ids
 * drop out and isomorphic chunks from different runs or workloads
 * collide on purpose), every depth/same-class/memo-hit/cycle event in
 * recursion order, the (op, payload, arity) of each matching e-node
 * pair, and the content-and-topology hash of each representative term a
 * same-class step returns.  Hole identities need no mirroring: they are
 * keyed by ordered class pairs (captured by the local ids) and
 * canonicalizeHoles renumbers them per pattern anyway.  Two chunks with
 * equal signatures therefore produce identical PairRecords under equal
 * options, which is what makes AuChunkCache replay sound.
 */
class ChunkSigner {
 public:
    ChunkSigner(const EGraph& egraph, const AuOptions& options,
                const ClassMap<uint64_t>& reprHashes)
        : egraph_(egraph), options_(options), reprHashes_(reprHashes)
    {}

    uint64_t
    sign(const std::vector<std::pair<EClassId, EClassId>>& pairs,
         size_t begin, size_t end)
    {
        hash_ = auOptionsFingerprint(options_);
        feed(end - begin);
        for (size_t i = begin; i < end; ++i) {
            feed(kMarkPair);
            visit(pairs[i].first, pairs[i].second, options_.maxDepth);
        }
        return hash_;
    }

 private:
    enum : uint64_t {
        kMarkPair = 0xA1,
        kMarkDepth0 = 0xA2,
        kMarkSameRepr = 0xA3,
        kMarkSameHole = 0xA4,
        kMarkMemo = 0xA5,
        kMarkCycle = 0xA6,
        kMarkExpand = 0xA7,
        kMarkNode = 0xA8,
        kMarkEnd = 0xA9,
    };

    void feed(uint64_t v) { hash_ = hashCombine(hash_, v); }

    uint64_t
    localId(EClassId id)
    {
        const auto [it, fresh] = locals_.emplace(id, locals_.size());
        return it->second;
    }

    void
    visit(EClassId a, EClassId b, int depth)
    {
        a = egraph_.find(a);
        b = egraph_.find(b);
        if (depth <= 0) {
            feed(kMarkDepth0);
            feed(localId(a));
            feed(localId(b));
            return;
        }
        if (a == b) {
            auto repr = reprHashes_.find(a);
            if (repr != reprHashes_.end()) {
                feed(kMarkSameRepr);
                feed(localId(a));
                feed(repr->second);
            } else {
                feed(kMarkSameHole);
                feed(localId(a));
            }
            return;
        }
        const PairKey key{a, b};
        // The shard memo is depth-oblivious (a memoized pair answers any
        // later depth); the mirror must be too.
        if (signed_.count(key) != 0) {
            feed(kMarkMemo);
            feed(localId(a));
            feed(localId(b));
            return;
        }
        if (inProgress_.count(key) != 0) {
            feed(kMarkCycle);
            feed(localId(a));
            feed(localId(b));
            return;
        }
        inProgress_.insert(key);
        feed(kMarkExpand);
        feed(localId(a));
        feed(localId(b));
        for (const ENode& na : egraph_.cls(a).nodes) {
            for (const ENode& nb : egraph_.cls(b).nodes) {
                if (na.op != nb.op || na.payload != nb.payload ||
                    na.children.size() != nb.children.size() ||
                    na.isLeaf()) {
                    continue;
                }
                feed(kMarkNode);
                feed(static_cast<uint64_t>(na.op));
                feed(na.payload.hash());
                feed(na.children.size());
                for (size_t i = 0; i < na.children.size(); ++i) {
                    visit(na.children[i], nb.children[i], depth - 1);
                }
            }
        }
        feed(kMarkEnd);
        inProgress_.erase(key);
        signed_.insert(key);
    }

    const EGraph& egraph_;
    const AuOptions& options_;
    const ClassMap<uint64_t>& reprHashes_;
    uint64_t hash_ = 0;
    std::unordered_map<EClassId, uint64_t> locals_;
    std::unordered_set<PairKey, PairKeyHash> signed_;
    std::unordered_set<PairKey, PairKeyHash> inProgress_;
};

/**
 * The anti-unification engine for one chunk of the pair list.
 *
 * Each shard owns its memo, hole namespace, and cycle-breaking set, so
 * shards never synchronize; canonicalizeHoles() renumbers every emitted
 * pattern's holes by first occurrence, which makes the per-shard hole
 * namespace invisible in the output.  The merge in identifyPatterns()
 * replays the serial sweep's control flow over the recorded chunks in
 * pair order, so the result is independent of the thread count.
 */
class AuShard {
 public:
    AuShard(const SweepContext& ctx, Budget* parent)
        : egraph_(ctx.egraph), options_(ctx.options), reprs_(ctx.reprs),
          budget_(sweepSpec(ctx.options), parent),
          pairLimited_(ctx.options.maxSecondsPerPair != kUnlimitedSeconds)
    {
        sweepLimited_ = budget_.remainingSeconds() != kUnlimitedSeconds;
    }

    ChunkOutcome
    runChunk(const std::vector<std::pair<EClassId, EClassId>>& pairs,
             size_t begin, size_t end, std::atomic<bool>& stopFlag)
    {
        ChunkOutcome out;
        out.records.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
            if (aborted_) {
                // The candidate budget blew mid-enumeration.  That cap is
                // experiment policy (the LLMT baseline exceeds it by
                // design), so the pairs never reached are not counted as
                // skipped work: `aborted` already tells the whole story.
                out.aborted = true;
                break;
            }
            if (fault::tripped("au.sweep") || !budget_.ok() ||
                stopFlag.load(std::memory_order_relaxed)) {
                // Sweep-level stop.  Flagging it lets sibling shards bail
                // out instead of computing results the merge will drop.
                stopFlag.store(true, std::memory_order_relaxed);
                out.stopped = true;
                break;
            }
            const auto& [a, b] = pairs[i];
            PairRecord rec;
            pairTripped_ = false;
            if (pairLimited_) {
                pairWatch_.reset();
            }
            const size_t rawBefore = rawCount_;
            if (fault::tripped("au.pair")) {
                rec.skipped = true;
                out.records.push_back(std::move(rec));
                continue;
            }
            // Per-pair skip-and-record: a pair that overruns its budget
            // or faults is dropped whole and the sweep moves on.
            std::vector<TermPtr> produced;
            try {
                produced = au(a, b, options_.maxDepth);
            } catch (const InternalError&) {
                inProgress_.clear();
                rec.skipped = true;
                rec.rawCandidates = rawCount_ - rawBefore;
                out.records.push_back(std::move(rec));
                continue;
            } catch (const std::bad_alloc&) {
                inProgress_.clear();
                rec.skipped = true;
                rec.rawCandidates = rawCount_ - rawBefore;
                out.records.push_back(std::move(rec));
                continue;
            }
            rec.rawCandidates = rawCount_ - rawBefore;
            if (pairTripped_) {
                rec.skipped = true;
                out.records.push_back(std::move(rec));
                continue;
            }
            for (const TermPtr& p : produced) {
                if (termOpCount(p) < options_.minOps ||
                    !p->hasHole || p->op == Op::List ||
                    !patternWellFormed(p)) {
                    continue;
                }
                // The uninterned renaming keeps the candidate's node
                // topology, which the registry's scheduling view (and
                // through it, pattern hardware costs) depends on; the
                // registry interns the canonical identity itself.
                rec.patterns.push_back(canonicalizeHolesUninterned(p));
            }
            out.records.push_back(std::move(rec));
        }
        // An abort on the chunk's last pair never reaches the loop-top
        // check; make sure the merge still sees it.
        out.aborted = out.aborted || aborted_;
        out.memoHits = memoHits_;
        out.memoMisses = memoMisses_;
        return out;
    }

 private:
    /**
     * The fresh variable shared by every occurrence of the *ordered*
     * (left, right) class pair.  Ordering matters for least-general-
     * generalization soundness: an AU variable stands for the
     * substitution (left-term, right-term); conflating (u, v) with
     * (v, u) would force one class to contain both sides' structure and
     * produce patterns that match nothing.
     */
    TermPtr
    holeFor(EClassId a, EClassId b)
    {
        PairKey key{egraph_.find(a), egraph_.find(b)};
        auto it = pairHole_.find(key);
        if (it == pairHole_.end()) {
            it = pairHole_.emplace(key, nextHole_++).first;
        }
        return hole(it->second);
    }

    /** sweep budget: deadline from options.maxSeconds (clamped to the
     *  parent's) + one consumable unit per raw candidate. */
    static BudgetSpec
    sweepSpec(const AuOptions& options)
    {
        BudgetSpec spec;
        spec.maxSeconds = options.maxSeconds;
        spec.maxUnits = options.maxCandidates;
        return spec;
    }

    std::vector<TermPtr>
    au(EClassId a, EClassId b, int depth)
    {
        a = egraph_.find(a);
        b = egraph_.find(b);
        // Per-pair and sweep deadlines are polled on every recursion
        // step, but only when one is actually set (both reads are free
        // in the default unlimited configuration).
        if (pairLimited_ && !pairTripped_ &&
            pairWatch_.seconds() > options_.maxSecondsPerPair) {
            pairTripped_ = true;
        }
        if (sweepLimited_ && !pairTripped_ && !budget_.ok()) {
            pairTripped_ = true;
        }
        if (depth <= 0 || aborted_ || pairTripped_) {
            return {holeFor(a, b)};
        }
        if (a == b) {
            auto repr = reprs_.find(a);
            if (repr != reprs_.end()) {
                return {repr->second, holeFor(a, b)};
            }
            return {holeFor(a, b)};
        }
        PairKey key{a, b};
        auto memo = memo_.find(key);
        if (memo != memo_.end()) {
            ++memoHits_;
            return memo->second;
        }
        ++memoMisses_;
        // Break cycles through in-progress pairs with the pair hole.  The
        // set stores the keys themselves: a hash collision here must not
        // make an unrelated pair look in-progress and silently degrade it
        // to a bare hole.
        if (!inProgress_.insert(key).second) {
            return {holeFor(a, b)};
        }

        std::vector<TermPtr> out{holeFor(a, b)};
        for (const ENode& na : egraph_.cls(a).nodes) {
            if (aborted_) {
                break;
            }
            for (const ENode& nb : egraph_.cls(b).nodes) {
                if (na.op != nb.op || na.payload != nb.payload ||
                    na.children.size() != nb.children.size() ||
                    na.isLeaf()) {
                    continue;
                }
                appendNodeAu(na, nb, depth, out);
                if (aborted_) {
                    break;
                }
            }
        }
        out = samplePatterns(std::move(out));
        inProgress_.erase(key);
        // A tripped pair produced degenerate (hole-heavy) results; do not
        // memoize them, so later pairs recompute this subproblem cleanly.
        if (!pairTripped_) {
            memo_.emplace(key, out);
        }
        return out;
    }

    /** AU over one matching e-node pair: sampled Cartesian product of the
     *  child AU sets appended to @p out. */
    void
    appendNodeAu(const ENode& na, const ENode& nb, int depth,
                 std::vector<TermPtr>& out)
    {
        const size_t arity = na.children.size();
        std::vector<std::vector<TermPtr>> childSets(arity);
        for (size_t i = 0; i < arity; ++i) {
            childSets[i] = au(na.children[i], nb.children[i], depth - 1);
            if (childSets[i].empty()) {
                childSets[i].push_back(
                    holeFor(na.children[i], nb.children[i]));
            }
            // Cheapest (most general) child patterns first, so the capped
            // product enumeration visits concise generalizations before
            // the deep specialized ones.
            std::sort(childSets[i].begin(), childSets[i].end(),
                      [](const TermPtr& x, const TermPtr& y) {
                          return hls::patternFeature(x) <
                                 hls::patternFeature(y);
                      });
        }

        // Enumerate the product with a per-node cap (sampling later
        // shrinks further; Exhaustive mode uses a high cap and relies on
        // the global budget to reproduce the blowup).
        const size_t productCap =
            options_.sampling == Sampling::Exhaustive ? 4096 : 64;
        if (options_.sampling != Sampling::Exhaustive) {
            // Balance the product: cap each child set at the arity-th
            // root of the budget so every child position contributes
            // (a lopsided first set would otherwise monopolize the cap).
            size_t perChild = productCap;
            if (arity == 2) {
                perChild = 8;
            } else if (arity >= 3) {
                perChild = 4;
            }
            for (auto& set : childSets) {
                if (set.size() > perChild) {
                    set.resize(perChild);
                }
            }
        }
        std::vector<size_t> index(arity, 0);
        size_t produced = 0;
        while (true) {
            std::vector<TermPtr> children(arity);
            for (size_t i = 0; i < arity; ++i) {
                children[i] = childSets[i][index[i]];
            }
            // Candidates stay uninterned inside the sweep: the feature
            // model counts hardware per distinct pointer, so candidate
            // topology (fresh node per product element over memo-shared
            // children) is part of sampling's observable behaviour.
            // Survivors are canonicalized and interned at the registry.
            out.push_back(makeTermUninterned(na.op, na.payload,
                                             std::move(children)));
            ++rawCount_;
            if (fault::tripped("au.candidate") ||
                !budget_.charge(1)) {
                aborted_ = true;
                return;
            }
            if (++produced >= productCap) {
                return;
            }
            // Advance the mixed-radix counter.
            size_t pos = 0;
            while (pos < arity && ++index[pos] == childSets[pos].size()) {
                index[pos] = 0;
                ++pos;
            }
            if (pos == arity) {
                return;
            }
        }
    }

    /** Apply the configured sampling strategy at the class-pair level. */
    std::vector<TermPtr>
    samplePatterns(std::vector<TermPtr> patterns)
    {
        if (options_.sampling == Sampling::Exhaustive ||
            patterns.size() <= options_.maxPatternsPerPair) {
            return patterns;
        }
        std::vector<double> features(patterns.size());
        for (size_t i = 0; i < patterns.size(); ++i) {
            features[i] = hls::patternFeature(patterns[i]);
        }

        std::vector<TermPtr> kept;
        if (options_.sampling == Sampling::Boundary) {
            // Keep extreme patterns by feature until the cap: repeatedly
            // take the current min and max.
            std::vector<size_t> order(patterns.size());
            for (size_t i = 0; i < order.size(); ++i) {
                order[i] = i;
            }
            std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
                return features[x] < features[y];
            });
            size_t lo = 0;
            size_t hi = order.size();
            while (kept.size() < options_.maxPatternsPerPair && lo < hi) {
                kept.push_back(patterns[order[lo++]]);
                if (kept.size() < options_.maxPatternsPerPair && lo < hi) {
                    kept.push_back(patterns[order[--hi]]);
                }
            }
            return kept;
        }

        // KdTree: recursively median-split on child features, then take
        // beta evenly spaced patterns per cell by the scalar feature.
        struct Entry {
            size_t idx;
            std::vector<double> coords;
        };
        std::vector<Entry> entries;
        entries.reserve(patterns.size());
        for (size_t i = 0; i < patterns.size(); ++i) {
            Entry e;
            e.idx = i;
            for (const TermPtr& child : patterns[i]->children) {
                e.coords.push_back(hls::patternFeature(child));
            }
            e.coords.resize(static_cast<size_t>(options_.kdDims), 0.0);
            entries.push_back(std::move(e));
        }

        std::vector<std::vector<Entry>> cells{entries};
        for (int d = 0; d < options_.kdDims; ++d) {
            std::vector<std::vector<Entry>> next;
            for (auto& cell : cells) {
                if (cell.size() <= 1) {
                    next.push_back(std::move(cell));
                    continue;
                }
                std::sort(cell.begin(), cell.end(),
                          [&](const Entry& x, const Entry& y) {
                              return x.coords[d] < y.coords[d];
                          });
                size_t mid = cell.size() / 2;
                next.emplace_back(cell.begin(), cell.begin() + mid);
                next.emplace_back(cell.begin() + mid, cell.end());
            }
            cells = std::move(next);
        }
        for (auto& cell : cells) {
            if (cell.empty()) {
                continue;
            }
            std::sort(cell.begin(), cell.end(),
                      [&](const Entry& x, const Entry& y) {
                          return features[x.idx] < features[y.idx];
                      });
            const size_t beta = static_cast<size_t>(options_.kdBeta);
            for (size_t k = 0; k < beta && k < cell.size(); ++k) {
                size_t pick = cell.size() == 1
                                  ? 0
                                  : k * (cell.size() - 1) /
                                        std::max<size_t>(1, beta - 1);
                kept.push_back(patterns[cell[pick].idx]);
            }
        }
        return kept;
    }

    const EGraph& egraph_;
    const AuOptions& options_;
    const ClassMap<TermPtr>& reprs_;
    Budget budget_;
    bool pairLimited_ = false;
    bool sweepLimited_ = false;
    bool pairTripped_ = false;
    Stopwatch pairWatch_;
    std::unordered_map<PairKey, std::vector<TermPtr>, PairKeyHash> memo_;
    std::unordered_map<PairKey, int64_t, PairKeyHash> pairHole_;
    std::unordered_set<PairKey, PairKeyHash> inProgress_;
    int64_t nextHole_ = 0;
    size_t rawCount_ = 0;
    size_t memoHits_ = 0;
    size_t memoMisses_ = 0;
    bool aborted_ = false;
};

/**
 * Pairs per chunk (= per shard).  A pure constant, NOT derived from the
 * thread count: the chunk partition decides where shard memos reset and
 * therefore shapes per-pair candidate counts, so deriving it from the
 * lane count would make output depend on the machine.  Small enough to
 * load-balance across stealing lanes, large enough to amortize the
 * per-shard memo warmup.
 */
constexpr size_t kChunkPairs = 32;

}  // namespace

std::vector<std::pair<EClassId, EClassId>>
selectAuPairs(const EGraph& egraph, const AuOptions& options,
              AuStats* stats)
{
    PairSelector selector(egraph, options);
    auto pairs = selector.select();
    if (stats != nullptr) {
        stats->pairsConsidered = selector.pairsConsidered();
    }
    return pairs;
}

AuResult
identifyPatterns(const EGraph& egraph, const AuOptions& options,
                 Budget* budget)
{
    TELEM_SPAN("au.sweep", "au");
    AuResult result;
    const auto pairs = selectAuPairs(egraph, options, &result.stats);

    // Small representative terms (for AU(a, a)), shared by all shards.
    // Each rep is a private uninterned DAG: the pointer-counted feature
    // model must not see sharing across extraction roots (see
    // copyTopologyUninterned in dsl/intern.hpp).
    ClassMap<TermPtr> reprs;
    {
        TELEM_SPAN("au.reprs", "au");
        Extractor extractor(egraph, astSizeCost);
        for (EClassId id : egraph.classIds()) {
            if (auto cost = extractor.costOf(id);
                cost.has_value() && *cost <= 12.0) {
                reprs[id] =
                    copyTopologyUninterned(extractor.extract(id).term);
            }
        }
    }
    const SweepContext ctx{egraph, options, reprs};

    // The chunk cache is consulted only when a replay is provably
    // equivalent to a cold run: no deadline can cut a chunk short, no
    // budget level can abort it, no fault site can fire inside it, and
    // sampling is chunked (Exhaustive's single serial shard carries its
    // abort point as part of the experiment).
    AuChunkCache* const cache =
        (options.chunkCache != nullptr &&
         options.sampling != Sampling::Exhaustive &&
         !fault::Registry::instance().enabled() &&
         options.maxSeconds == kUnlimitedSeconds &&
         options.maxSecondsPerPair == kUnlimitedSeconds &&
         (budget == nullptr || budget->unconstrained()))
            ? options.chunkCache
            : nullptr;
    ClassMap<uint64_t> reprHashes;
    if (cache != nullptr) {
        reprHashes.reserve(reprs.size());
        for (const auto& [id, repr] : reprs) {
            reprHashes[id] = topologyHash(repr);
        }
    }

    // Shard the pair list into fixed-size chunks and fan them across the
    // pool.  Exhaustive mode runs as a single serial shard: its global
    // candidate-budget abort point is order-dependent by design.
    const size_t chunkSize = options.sampling == Sampling::Exhaustive
                                 ? std::max<size_t>(pairs.size(), 1)
                                 : kChunkPairs;
    const size_t numChunks = (pairs.size() + chunkSize - 1) / chunkSize;
    std::vector<ChunkOutcome> outcomes(numChunks);
    std::atomic<bool> stopFlag{false};
    auto runChunk = [&](size_t c) {
        TELEM_SPAN_ARGS("au.chunk", "au",
                        "\"chunk\": " + std::to_string(c));
        const size_t begin = c * chunkSize;
        const size_t end = std::min(pairs.size(), (c + 1) * chunkSize);
        uint64_t signature = 0;
        if (cache != nullptr) {
            ChunkSigner signer(egraph, options, reprHashes);
            signature = signer.sign(pairs, begin, end);
            if (const AuCachedChunk* hit = cache->lookup(signature)) {
                // Replay: clone each pattern as a private uninterned DAG
                // (within-pattern sharing preserved; downstream charges
                // hardware per distinct pointer) and charge the budget
                // exactly what the cold run charged, so parent budget
                // accounting is identical.
                ChunkOutcome replayed;
                replayed.signature = signature;
                replayed.replayed = true;
                replayed.memoHits = hit->memoHits;
                replayed.memoMisses = hit->memoMisses;
                replayed.records.reserve(hit->pairs.size());
                for (const AuCachedPair& pair : hit->pairs) {
                    PairRecord rec;
                    rec.rawCandidates = pair.rawCandidates;
                    rec.patterns.reserve(pair.patterns.size());
                    for (const TermPtr& p : pair.patterns) {
                        rec.patterns.push_back(copyTopologyUninterned(p));
                    }
                    replayed.records.push_back(std::move(rec));
                }
                if (budget != nullptr && hit->units > 0) {
                    budget->charge(hit->units);
                }
                outcomes[c] = std::move(replayed);
                return;
            }
        }
        AuShard shard(ctx, budget);
        outcomes[c] = shard.runChunk(pairs, begin, end, stopFlag);
        outcomes[c].signature = signature;
    };
    if (options.threads == 1 || numChunks <= 1) {
        for (size_t c = 0; c < numChunks; ++c) {
            runChunk(c);
        }
    } else if (options.threads == 0) {
        globalPool().parallelFor(numChunks, runChunk);
    } else {
        ThreadPool pool(options.threads);
        pool.parallelFor(numChunks, runChunk);
    }

    // Feed the chunk cache: record every chunk that ran clean end to end
    // (no stop, no abort, no skipped pair), and count the pairs that
    // replayed chunks spared us.  Stored patterns share the shard's term
    // DAGs; the cache owns them from here on.
    if (cache != nullptr) {
        size_t replayedPairs = 0;
        for (size_t c = 0; c < numChunks; ++c) {
            const ChunkOutcome& chunk = outcomes[c];
            if (chunk.replayed) {
                replayedPairs += chunk.records.size();
                continue;
            }
            if (chunk.signature == 0 || chunk.stopped || chunk.aborted) {
                continue;
            }
            bool clean = true;
            AuCachedChunk cached;
            cached.memoHits = chunk.memoHits;
            cached.memoMisses = chunk.memoMisses;
            cached.pairs.reserve(chunk.records.size());
            for (const PairRecord& rec : chunk.records) {
                if (rec.skipped) {
                    clean = false;
                    break;
                }
                AuCachedPair pair;
                pair.rawCandidates = rec.rawCandidates;
                pair.patterns = rec.patterns;
                cached.units += rec.rawCandidates;
                cached.pairs.push_back(std::move(pair));
            }
            if (clean) {
                cache->store(chunk.signature, std::move(cached));
            }
        }
        telemetry::Registry::instance()
            .counter("corpus.skipped_pairs")
            .add(replayedPairs);
    }

    // Telemetry per-shard records: what every chunk actually did,
    // including chunks the merge below will cut off.  Hit rates and
    // budget charge are per-chunk because each chunk is its own shard
    // (fresh memo, own Budget child).
    if (telemetry::enabled()) {
        auto& registry = telemetry::Registry::instance();
        for (size_t c = 0; c < numChunks; ++c) {
            const ChunkOutcome& chunk = outcomes[c];
            size_t raw = 0;
            size_t skipped = 0;
            for (const PairRecord& rec : chunk.records) {
                raw += rec.rawCandidates;
                skipped += rec.skipped ? 1 : 0;
            }
            std::ostringstream rec;
            rec << "{\"chunk\": " << c
                << ", \"pairs\": " << chunk.records.size()
                << ", \"raw_candidates\": " << raw
                << ", \"memo_hits\": " << chunk.memoHits
                << ", \"memo_misses\": " << chunk.memoMisses
                << ", \"skipped\": " << skipped
                << ", \"stopped\": " << (chunk.stopped ? "true" : "false")
                << ", \"aborted\": " << (chunk.aborted ? "true" : "false")
                << ", \"replayed\": " << (chunk.replayed ? "true" : "false")
                << "}";
            registry.appendRecord("au.shards", rec.str());
            registry.counter("au.pairs_explored").add(chunk.records.size());
            registry.counter("au.raw_candidates").add(raw);
            registry.counter("au.memo_hits").add(chunk.memoHits);
            registry.counter("au.memo_misses").add(chunk.memoMisses);
        }
    }

    // Merge in pair order, replaying the serial sweep's control flow:
    // global structural dedup, the result-pattern cap (checked before
    // each pair and again mid-pair), the candidate-budget abort at the
    // cumulative count, and skip accounting for a sweep-level stop.
    // Everything here depends only on the per-chunk records, which the
    // fixed chunk partition makes thread-count invariant.
    AuStats& stats = result.stats;
    std::unordered_set<TermPtr, TermPtrHash, TermPtrEq> seen;
    size_t cumulativeRaw = 0;
    bool done = false;
    for (size_t c = 0; c < numChunks && !done; ++c) {
        const ChunkOutcome& chunk = outcomes[c];
        for (const PairRecord& rec : chunk.records) {
            if (result.patterns.size() >= options.maxResultPatterns) {
                done = true;
                break;
            }
            ++stats.pairsExplored;
            cumulativeRaw += rec.rawCandidates;
            stats.rawCandidates = cumulativeRaw;
            if (rec.skipped) {
                ++stats.skippedPairs;
            } else {
                for (const TermPtr& p : rec.patterns) {
                    if (seen.insert(p).second) {
                        result.patterns.push_back(p);
                        if (result.patterns.size() >=
                            options.maxResultPatterns) {
                            break;
                        }
                    }
                }
            }
            if (options.sampling != Sampling::Exhaustive &&
                cumulativeRaw > options.maxCandidates) {
                stats.aborted = true;
                done = true;
                break;
            }
        }
        if (done) {
            break;
        }
        if (chunk.aborted) {
            stats.aborted = true;
            break;
        }
        if (chunk.stopped) {
            stats.timedOut = true;
            stats.skippedPairs +=
                pairs.size() - (c * chunkSize + chunk.records.size());
            break;
        }
    }
    return result;
}

}  // namespace rii
}  // namespace isamore
