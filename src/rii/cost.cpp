#include "rii/cost.hpp"

#include <unordered_set>

#include "egraph/ematch.hpp"
#include "profile/timing.hpp"
#include "support/check.hpp"

namespace isamore {
namespace rii {

CostModel::CostModel(const frontend::EncodedProgram& prog,
                     const profile::ModuleProfile& profile,
                     const PatternRegistry& registry,
                     double invokeOverheadNs)
    : prog_(&prog), profile_(&profile), registry_(&registry),
      invokeOverheadNs_(invokeOverheadNs), totalNs_(profile.totalNs())
{}

double
CostModel::siteOpNs(int func, ir::BlockId block) const
{
    if (static_cast<size_t>(func) >= profile_->functions.size()) {
        return profile::cyclesToNs(1.0);
    }
    const auto& blocks = profile_->functions[func].blocks;
    if (block >= blocks.size()) {
        return profile::cyclesToNs(1.0);
    }
    return profile::cyclesToNs(blocks[block].cpo());
}

uint64_t
CostModel::blockExecCount(int func, ir::BlockId block) const
{
    if (static_cast<size_t>(func) >= profile_->functions.size()) {
        return 0;
    }
    const auto& blocks = profile_->functions[func].blocks;
    return block < blocks.size() ? blocks[block].execCount : 0;
}

double
CostModel::blockSoftwareNs(int func, ir::BlockId block) const
{
    if (static_cast<size_t>(func) >= profile_->functions.size()) {
        return 0;
    }
    const auto& blocks = profile_->functions[func].blocks;
    if (block >= blocks.size()) {
        return 0;
    }
    return profile::cyclesToNs(static_cast<double>(blocks[block].cycles));
}

PatternEval
CostModel::evaluate(int64_t id, const EGraph& egraph,
                    size_t maxMatches) const
{
    PatternEval eval;
    eval.id = id;
    eval.body = registry_->body(id);
    // Unique ops: a CPU with common-subexpression elimination executes
    // each distinct subterm once, so shared subtrees must not be billed
    // per occurrence.
    eval.opCount = termOpCountUnique(eval.body);
    // The hardware estimate is pointer-topology sensitive (area per
    // distinct node): schedule the registry's dedicated scheduling
    // view, not the hash-consed canonical body (see dsl/intern.hpp).
    eval.hw = hls::estimatePattern(registry_->costBody(id),
                                   registry_->costResolver());

    // Operand delivery: a tightly-coupled CI reads two register operands
    // per issue slot, so wide patterns pay extra transfer time per use.
    const double operandNs =
        0.25 * static_cast<double>(termHoles(eval.body).size());

    // Matched classes (deduplicated) in the working e-graph.
    auto matches = ematchAll(egraph, eval.body, maxMatches);
    std::unordered_set<EClassId> matched;
    for (const EMatch& m : matches) {
        matched.insert(egraph.find(m.root));
    }

    // Every original-program site living in a matched class is a use.
    const double hwNs =
        eval.hw.latencyNs + invokeOverheadNs_ + operandNs;
    for (const frontend::Site& site : prog_->sites) {
        EClassId canon = egraph.find(site.klass);
        if (matched.count(canon) == 0) {
            continue;
        }
        UseSite use;
        use.klass = canon;
        use.func = site.func;
        use.block = site.block;
        use.execCount = blockExecCount(site.func, site.block);
        use.cpoCycles = profile::cyclesToNs(1.0) > 0
                            ? siteOpNs(site.func, site.block) *
                                  profile::kCpuFreqGHz
                            : 1.0;
        const double sw_ns = static_cast<double>(eval.opCount) *
                             siteOpNs(site.func, site.block);
        const double per_exec = sw_ns - hwNs;
        use.savedNs = per_exec > 0
                          ? per_exec * static_cast<double>(use.execCount)
                          : 0.0;
        eval.deltaNs += use.savedNs;
        eval.uses.push_back(use);
    }
    return eval;
}

}  // namespace rii
}  // namespace isamore
