#include "rii/registry.hpp"

#include "dsl/intern.hpp"
#include "support/check.hpp"

namespace isamore {
namespace rii {

int64_t
PatternRegistry::add(const TermPtr& body)
{
    // The scheduling view renames holes like canonicalizeHoles but
    // keeps the body's arrival topology, which the pointer-counting
    // HLS estimator observes; interning it yields the canonical body,
    // whose pointer is a complete structural key.
    TermPtr costBody = canonicalizeHolesUninterned(body);
    TermPtr canon = internTerm(costBody);
    auto it = byKey_.find(canon.get());
    if (it != byKey_.end()) {
        return it->second;
    }
    bodies_.push_back(canon);
    costBodies_.push_back(std::move(costBody));
    int64_t id = static_cast<int64_t>(bodies_.size() - 1);
    byKey_.emplace(canon.get(), id);
    return id;
}

const TermPtr&
PatternRegistry::body(int64_t id) const
{
    ISAMORE_CHECK_MSG(contains(id), "unknown pattern id");
    return bodies_[static_cast<size_t>(id)];
}

const TermPtr&
PatternRegistry::costBody(int64_t id) const
{
    ISAMORE_CHECK_MSG(contains(id), "unknown pattern id");
    return costBodies_[static_cast<size_t>(id)];
}

bool
PatternRegistry::contains(int64_t id) const
{
    return id >= 0 && static_cast<size_t>(id) < bodies_.size();
}

std::function<TermPtr(int64_t)>
PatternRegistry::resolver() const
{
    // Capture by pointer: the registry outlives the closures in RII runs.
    const auto* self = this;
    return [self](int64_t id) -> TermPtr {
        return self->contains(id) ? self->body(id) : nullptr;
    };
}

std::function<TermPtr(int64_t)>
PatternRegistry::costResolver() const
{
    const auto* self = this;
    return [self](int64_t id) -> TermPtr {
        return self->contains(id) ? self->costBody(id) : nullptr;
    };
}

RewriteRule
PatternRegistry::applicationRule(int64_t id) const
{
    const TermPtr& b = body(id);
    std::vector<TermPtr> args;
    for (int64_t h : termHoles(b)) {
        args.push_back(hole(h));
    }
    RewriteRule rule;
    rule.name = "apply-pattern-" + std::to_string(id);
    rule.lhs = b;
    rule.rhs = app(id, std::move(args));
    rule.flags = kRuleSat;  // App nodes join the matched class
    return rule;
}

std::vector<RewriteRule>
PatternRegistry::applicationRules(const std::vector<int64_t>& ids) const
{
    std::vector<RewriteRule> out;
    out.reserve(ids.size());
    for (int64_t id : ids) {
        out.push_back(applicationRule(id));
    }
    return out;
}

}  // namespace rii
}  // namespace isamore
