/**
 * @file
 * Structural hashing e-class analysis (paper §5.2, Fig. 8a).
 *
 * Every e-node hashes its constructor together with its children's class
 * hashes; every e-class aggregates its member node hashes by majority vote
 * at each of the 64 bit positions.  Literals, arguments, and pattern
 * variables hash to one uniform value so that structurally-similar terms
 * pair up regardless of their leaves.  Similarity between two classes is
 * the Hamming distance of their hashes.
 */
#pragma once

#include <cstdint>

#include "egraph/analysis.hpp"

namespace isamore {
namespace rii {

/** Compute 64-bit structural hashes for all canonical classes. */
ClassMap<uint64_t> computeStructHashes(const EGraph& egraph, int rounds = 8);

/** Hamming distance between two class hashes (0 = identical structure). */
inline int
structDistance(uint64_t a, uint64_t b)
{
    return __builtin_popcountll(a ^ b);
}

}  // namespace rii
}  // namespace isamore
