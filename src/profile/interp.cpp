#include "profile/interp.hpp"

#include <cstring>

#include "profile/timing.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"

namespace isamore {
namespace profile {
namespace {

/** Evaluate one scalar compute op via the shared DSL semantics. */
Value
applyScalarOp(Op op, const std::vector<Value>& args)
{
    // Reuse the DSL evaluator on a tiny synthetic term so the IR and DSL
    // semantics can never diverge.
    std::vector<TermPtr> holes;
    holes.reserve(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
        holes.push_back(hole(static_cast<int64_t>(i)));
    }
    EvalContext ctx;
    ctx.holeValue = [&](int64_t id) { return args[static_cast<size_t>(id)]; };
    return evaluate(makeTerm(op, Payload::none(), std::move(holes)), ctx);
}

}  // namespace

uint64_t
ModuleProfile::totalCycles() const
{
    uint64_t total = 0;
    for (const auto& fp : functions) {
        for (const auto& bs : fp.blocks) {
            total += bs.cycles;
        }
    }
    return total;
}

double
ModuleProfile::totalNs() const
{
    return cyclesToNs(static_cast<double>(totalCycles()));
}

void
ModuleProfile::accumulate(const ModuleProfile& other)
{
    if (functions.size() < other.functions.size()) {
        functions.resize(other.functions.size());
    }
    for (size_t f = 0; f < other.functions.size(); ++f) {
        auto& mine = functions[f].blocks;
        const auto& theirs = other.functions[f].blocks;
        if (mine.size() < theirs.size()) {
            mine.resize(theirs.size());
        }
        for (size_t b = 0; b < theirs.size(); ++b) {
            mine[b].execCount += theirs[b].execCount;
            mine[b].ops += theirs[b].ops;
            mine[b].cycles += theirs[b].cycles;
        }
    }
}

Machine::Machine(const ir::Module& module, size_t memoryWords)
    : module_(module), memory_(memoryWords, 0)
{
    profile_.functions.resize(module.functions.size());
    for (size_t f = 0; f < module.functions.size(); ++f) {
        profile_.functions[f].blocks.resize(
            module.functions[f].blocks.size());
    }
}

void
Machine::resetProfile()
{
    for (auto& fp : profile_.functions) {
        for (auto& bs : fp.blocks) {
            bs = BlockStats{};
        }
    }
}

std::optional<Value>
Machine::run(const std::string& name, const std::vector<Value>& args)
{
    int idx = module_.findFunction(name);
    if (idx < 0) {
        throw InterpError("no such function: " + name);
    }
    return run(idx, args);
}

std::optional<Value>
Machine::run(int funcIndex, const std::vector<Value>& args)
{
    ISAMORE_USER_CHECK(
        funcIndex >= 0 &&
            static_cast<size_t>(funcIndex) < module_.functions.size(),
        "function index out of range");
    const ir::Function& fn = module_.functions[funcIndex];
    if (args.size() != fn.numParams()) {
        throw InterpError(fn.name + ": argument count mismatch");
    }
    // Fault-injection site: a tripped profiler run fails like a dynamic
    // interpreter error (the upper layers' recovery paths are the same).
    if (fault::tripped("profile.run")) {
        throw InterpError(fn.name + ": injected fault at profile.run");
    }

    std::vector<Value> values(fn.numValues());
    for (size_t i = 0; i < args.size(); ++i) {
        values[i] = args[i];
    }

    FunctionProfile& fp = profile_.functions[funcIndex];

    ir::BlockId current = 0;
    ir::BlockId previous = ir::kNoBlock;
    const uint64_t kMaxSteps = 1ull << 28;
    uint64_t steps = 0;

    while (true) {
        const ir::Block& block = fn.blocks[current];
        BlockStats& stats = fp.blocks[current];
        ++stats.execCount;

        // Phis execute as a parallel copy read from the incoming edge.
        size_t i = 0;
        std::vector<std::pair<ir::ValueId, Value>> phi_writes;
        for (; i < block.instrs.size() &&
               block.instrs[i].kind == ir::Instr::Kind::Phi;
             ++i) {
            const ir::Instr& ins = block.instrs[i];
            bool matched = false;
            for (size_t k = 0; k < ins.phiPreds.size(); ++k) {
                if (ins.phiPreds[k] == previous) {
                    phi_writes.emplace_back(ins.dest,
                                            values[ins.args[k]]);
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                throw InterpError(fn.name + ": phi has no incoming for bb" +
                                  std::to_string(previous));
            }
            stats.ops += 1;
            stats.cycles += cyclesForOverhead();
        }
        for (auto& [dest, value] : phi_writes) {
            values[dest] = value;
        }

        for (; i < block.instrs.size(); ++i) {
            const ir::Instr& ins = block.instrs[i];
            if (++steps > kMaxSteps) {
                throw InterpError(fn.name + ": step limit exceeded");
            }
            switch (ins.kind) {
              case ir::Instr::Kind::Const:
                values[ins.dest] =
                    ins.payload.kind == Payload::Kind::Float
                        ? Value::ofFloat(ins.payload.f)
                        : Value::ofInt(ins.payload.a);
                stats.ops += 1;
                stats.cycles += cyclesForOverhead();
                break;
              case ir::Instr::Kind::Compute: {
                stats.ops += 1;
                stats.cycles += cyclesForOp(ins.op);
                if (ins.op == Op::Load) {
                    int64_t addr = values[ins.args[0]].i +
                                   values[ins.args[1]].i;
                    if (addr < 0 || static_cast<size_t>(addr) >=
                                        memory_.size()) {
                        throw InterpError(fn.name + ": load out of range");
                    }
                    uint64_t bits = memory_[static_cast<size_t>(addr)];
                    if (scalarIsFloat(
                            static_cast<ScalarKind>(ins.payload.a))) {
                        double d = 0;
                        std::memcpy(&d, &bits, sizeof(d));
                        values[ins.dest] = Value::ofFloat(d);
                    } else {
                        values[ins.dest] =
                            Value::ofInt(static_cast<int64_t>(bits));
                    }
                } else if (ins.op == Op::Store) {
                    int64_t addr = values[ins.args[0]].i +
                                   values[ins.args[1]].i;
                    if (addr < 0 || static_cast<size_t>(addr) >=
                                        memory_.size()) {
                        throw InterpError(fn.name + ": store out of range");
                    }
                    const Value& v = values[ins.args[2]];
                    uint64_t bits = 0;
                    if (v.kind == Value::Kind::Float) {
                        std::memcpy(&bits, &v.f, sizeof(bits));
                    } else {
                        bits = static_cast<uint64_t>(v.i);
                    }
                    memory_[static_cast<size_t>(addr)] = bits;
                    values[ins.dest] = Value::ofInt(0);
                } else {
                    std::vector<Value> operands;
                    operands.reserve(ins.args.size());
                    for (ir::ValueId a : ins.args) {
                        operands.push_back(values[a]);
                    }
                    values[ins.dest] = applyScalarOp(ins.op, operands);
                }
                break;
              }
              case ir::Instr::Kind::Br:
                stats.cycles += cyclesForOverhead();
                previous = current;
                current = ins.succs[0];
                goto next_block;
              case ir::Instr::Kind::CondBr: {
                stats.cycles += cyclesForOverhead();
                previous = current;
                const Value& c = values[ins.args[0]];
                current = (c.kind == Value::Kind::Float ? c.f != 0.0
                                                        : c.i != 0)
                              ? ins.succs[0]
                              : ins.succs[1];
                goto next_block;
              }
              case ir::Instr::Kind::Ret:
                if (!ins.args.empty()) {
                    return values[ins.args[0]];
                }
                return std::nullopt;
              case ir::Instr::Kind::Phi:
                throw InterpError(fn.name + ": phi after non-phi");
            }
        }
        throw InterpError(fn.name + ": block fell through");
    next_block:;
    }
}

void
Machine::writeInts(uint64_t base, const std::vector<int64_t>& values)
{
    ISAMORE_USER_CHECK(base + values.size() <= memory_.size(),
                       "writeInts out of range");
    for (size_t i = 0; i < values.size(); ++i) {
        memory_[base + i] = static_cast<uint64_t>(values[i]);
    }
}

void
Machine::writeFloats(uint64_t base, const std::vector<double>& values)
{
    ISAMORE_USER_CHECK(base + values.size() <= memory_.size(),
                       "writeFloats out of range");
    for (size_t i = 0; i < values.size(); ++i) {
        uint64_t bits = 0;
        std::memcpy(&bits, &values[i], sizeof(bits));
        memory_[base + i] = bits;
    }
}

int64_t
Machine::readInt(uint64_t addr) const
{
    ISAMORE_USER_CHECK(addr < memory_.size(), "readInt out of range");
    return static_cast<int64_t>(memory_[addr]);
}

double
Machine::readFloat(uint64_t addr) const
{
    ISAMORE_USER_CHECK(addr < memory_.size(), "readFloat out of range");
    double d = 0;
    std::memcpy(&d, &memory_[addr], sizeof(d));
    return d;
}

}  // namespace profile
}  // namespace isamore
