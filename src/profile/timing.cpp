#include "profile/timing.hpp"

namespace isamore {
namespace profile {

int
cyclesForOp(Op op)
{
    switch (op) {
      case Op::Mul:
      case Op::Mad:
        return 3;
      case Op::Div:
      case Op::Rem:
        return 18;
      case Op::FAdd:
      case Op::FSub:
      case Op::FMin:
      case Op::FMax:
      case Op::FEq:
      case Op::FLt:
      case Op::FLe:
        return 3;
      case Op::FMul:
      case Op::Fma:
        return 4;
      case Op::FDiv:
        return 14;
      case Op::FSqrt:
        return 20;
      case Op::Load:
        return 4;
      case Op::Store:
        return 2;
      case Op::IToF:
      case Op::FToI:
        return 2;
      default:
        // add/sub/logic/shift/compare/select/min/max/neg/abs...
        return 1;
    }
}

int
cyclesForOverhead()
{
    return 1;
}

}  // namespace profile
}  // namespace isamore
