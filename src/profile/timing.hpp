/**
 * @file
 * The software timing model (gem5 substitute).
 *
 * A per-opcode cycle table approximating an in-order embedded RISC-V core.
 * The absolute numbers matter less than the relative magnitudes (mul > add,
 * div >> mul, memory ops slow): the paper's cost model (Eq. 1) consumes
 * only per-block cycles-per-operation averages, which this table supplies
 * deterministically.
 */
#pragma once

#include <cstdint>

#include "dsl/op.hpp"
#include "dsl/type.hpp"

namespace isamore {
namespace profile {

/**
 * CPU clock frequency used to convert cycles to nanoseconds.
 *
 * The modeled core runs *faster* than the 1 GHz accelerator target (the
 * paper makes this point explicitly when explaining why NOVIA's
 * whole-block offload loses: simple instruction sequences run faster on
 * the higher-clocked processor).  Custom instructions win through fusion
 * density -- collapsing multi-cycle operation chains into one or two
 * accelerator cycles -- not through a clock advantage.
 */
inline constexpr double kCpuFreqGHz = 2.0;

/** Cycles one dynamic execution of @p op takes on the modeled core. */
int cyclesForOp(Op op);

/** Cycles for non-compute instruction kinds (phi/br/const). */
int cyclesForOverhead();

/** Convert CPU cycles to nanoseconds. */
inline double
cyclesToNs(double cycles)
{
    return cycles / kCpuFreqGHz;
}

}  // namespace profile
}  // namespace isamore
