/**
 * @file
 * MiniIR interpreter with basic-block instrumentation (the paper's
 * gem5-based profiling flow, §6).
 *
 * Executes a Module over a flat 64-bit word-addressed memory, counting per
 * basic block: executions, dynamic operations, and modeled cycles (from
 * profile/timing.hpp).  The resulting ModuleProfile supplies the CPO
 * (cycles per operation) and use counts that drive the hardware-aware cost
 * model.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dsl/eval.hpp"
#include "ir/ir.hpp"

namespace isamore {
namespace profile {

/** Per-block dynamic statistics. */
struct BlockStats {
    uint64_t execCount = 0;  ///< times the block was entered
    uint64_t ops = 0;        ///< dynamic instructions executed
    uint64_t cycles = 0;     ///< modeled CPU cycles spent

    /** Average cycles per operation (the paper's CPO); 1.0 when unknown. */
    double
    cpo() const
    {
        return ops == 0 ? 1.0 : static_cast<double>(cycles) /
                                    static_cast<double>(ops);
    }
};

/** Per-function profile, indexed by block id. */
struct FunctionProfile {
    std::vector<BlockStats> blocks;
};

/** Whole-module profile. */
struct ModuleProfile {
    std::vector<FunctionProfile> functions;

    /** Total modeled CPU cycles across all blocks. */
    uint64_t totalCycles() const;

    /** Total software execution time in nanoseconds (L_cpu in Eq. 2). */
    double totalNs() const;

    /** Merge another profile into this one (for multi-run workloads). */
    void accumulate(const ModuleProfile& other);
};

/** Thrown on dynamic errors (bad memory access, missing return, ...). */
class InterpError : public std::runtime_error {
 public:
    explicit InterpError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/**
 * The execution machine: module + memory + accumulated profile.
 *
 * Memory is word addressed (one 64-bit cell per address); integer values
 * are stored raw, floats bit-cast, matching the DSL evaluator's model so
 * frontend translations can be cross-checked cell for cell.
 */
class Machine {
 public:
    explicit Machine(const ir::Module& module, size_t memoryWords = 1 << 16);

    /**
     * Call function @p funcIndex with scalar @p args.
     * @return the returned value, if the function returns one.
     */
    std::optional<Value> run(int funcIndex, const std::vector<Value>& args);

    /** Convenience: call by name. @throws InterpError when absent. */
    std::optional<Value> run(const std::string& name,
                             const std::vector<Value>& args);

    std::vector<uint64_t>& memory() { return memory_; }
    const ModuleProfile& moduleProfile() const { return profile_; }

    /** Reset profile counters (memory is kept). */
    void resetProfile();

    /** Store an int32/float array into memory starting at @p base. */
    void writeInts(uint64_t base, const std::vector<int64_t>& values);
    void writeFloats(uint64_t base, const std::vector<double>& values);
    int64_t readInt(uint64_t addr) const;
    double readFloat(uint64_t addr) const;

 private:
    const ir::Module& module_;
    std::vector<uint64_t> memory_;
    ModuleProfile profile_;
};

}  // namespace profile
}  // namespace isamore
