/**
 * @file
 * Persistent pattern corpus: cross-run and cross-workload result caching
 * (ROADMAP item 1).
 *
 * A Corpus accumulates, across analysis runs, everything worth keeping:
 *
 *  - the **pattern library**: every costed pattern body ever mined, with
 *    the workload that first produced it, so patterns mined from one
 *    workload can seed candidate generation for another;
 *  - the **AU chunk memo**: recorded anti-unification chunk results
 *    keyed by trace signature (rii::AuChunkCache), replayed verbatim on
 *    warm runs -- across runs and across workloads whose chunks are
 *    isomorphic;
 *  - **full analysis results** keyed by (workload, program, mode, rules,
 *    config) fingerprints, so an unchanged request skips the pipeline
 *    entirely;
 *  - **per-workload tuned EqSat strategies** (the data previously
 *    stranded in bench/fig10.tuned), with a "global" fallback entry;
 *  - **named e-graph snapshots** (EGraphSnapshot round-trips, used by
 *    the differential tests and available to tooling).
 *
 * Determinism contract: a warm run that hits the corpus produces output
 * byte-identical to the cold run it replaces (modulo the "seconds"
 * wall-clock fields), at every thread count.  The pieces that guarantee
 * it: results are only stored from non-degraded, unconstrained,
 * fault-free runs; AU chunks replay with the exact per-pair records and
 * budget charges of their cold runs; and the file frame refuses any
 * corpus written by a build with different rewrite rules or operators.
 * Library seeding (RiiConfig::seedPatterns) is the one deliberately
 * output-changing feature and is opt-in via --corpus-seed.
 *
 * Concurrency: every method takes an internal mutex; AuCachedChunk
 * pointers returned by lookup() stay valid for the corpus's lifetime
 * (entries are never erased, only refused past a cap).  Terms held by
 * the corpus are strong TermPtr references, which is what pins their
 * interned nodes across internPurge(): the interner only drops nodes
 * with no outside reference, so corpus-held patterns survive server
 * purge sweeps by construction (see pinnedNodeCount()).
 */
#pragma once

#include <map>
#include <mutex>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/format.hpp"
#include "egraph/strategy.hpp"
#include "isamore/isamore.hpp"
#include "rii/au.hpp"
#include "rii/rii.hpp"
#include "rules/rulesets.hpp"

namespace isamore {
namespace corpus {

/** One accumulated library pattern. */
struct LibraryEntry {
    TermPtr body;          ///< scheduling view (topology-preserving DAG)
    /** Interned canonical form; the strong reference keeps the raw
     *  pointer used as the library index key valid across purges. */
    TermPtr canonical;
    std::string workload;  ///< workload that first mined it
    uint64_t seen = 1;     ///< runs that re-mined it (any workload)
};

/**
 * A full analysis result in storable form: RiiResult minus the base
 * program (the fetcher re-attaches the live AnalyzedWorkload's program)
 * and minus wall-clock (stats.seconds is overwritten at fetch).
 */
struct CachedResult {
    /** Registry scheduling views in id order; rehydrating a registry by
     *  add()-ing these in order reproduces the original ids. */
    std::vector<TermPtr> registryBodies;
    std::vector<rii::Solution> front;
    rii::RiiStats stats;
    rii::RunDiagnostics diagnostics;
    /** (pattern id, evaluation), ascending by id. */
    std::vector<std::pair<int64_t, rii::PatternEval>> evaluations;
};

/** @name Invalidation fingerprints
 *  @{ */

/** Hash of the rewrite-rule library (names, flags, LHS/RHS structure). */
uint64_t rulesFingerprint(const rules::RulesetLibrary& rules);

/** Hash of the operator table (index, name, arity, flags). */
uint64_t opSchemaFingerprint();

/**
 * Hash of an encoded program as the pipeline observes it: e-graph
 * content (canonical classes, nodes), root, function roots, site list,
 * profile total, and IR instruction count.
 */
uint64_t programFingerprint(const AnalyzedWorkload& analyzed);

/**
 * Hash of every RiiConfig field that shapes pipeline output.  Excludes
 * au.threads and the chunk-cache pointer (thread count and cache hits
 * are behaviour-invariant) but includes seed patterns (seeding widens
 * the candidate set).
 */
uint64_t configFingerprint(const rii::RiiConfig& config);

/** The Results-section key for one analysis request. */
std::string resultKey(const std::string& workload, uint64_t programFp,
                      rii::Mode mode, uint64_t rulesFp, uint64_t configFp);

/** @} */

/** The persistent corpus (see file comment). */
class Corpus final : public rii::AuChunkCache {
 public:
    Corpus() = default;
    Corpus(const Corpus&) = delete;
    Corpus& operator=(const Corpus&) = delete;

    /** @name Persistence
     *  @{ */

    /**
     * Load @p path, replacing this corpus's contents.  The whole file is
     * validated (frame checksum, magic, format version, rules and op
     * hashes, every section payload) before any state changes, so a
     * corrupt file throws UserError naming the path and leaves the
     * corpus exactly as it was -- no partial loads.
     */
    void load(const std::string& path, const rules::RulesetLibrary& rules);

    /** Serialize and publish to @p path via atomic rename; clears the
     *  dirty flag.  @throws UserError naming the path on I/O failure. */
    void save(const std::string& path, const rules::RulesetLibrary& rules);

    /** Whether anything was recorded since the last load()/save(). */
    bool dirty() const;

    /** @} */

    /** @name Tuned strategies
     *  @{ */

    /** Strategy recorded for @p workload, falling back to "global". */
    std::optional<Strategy> strategyFor(const std::string& workload) const;

    /** Record the tuned strategy for @p workload ("global" = fallback). */
    void recordStrategy(const std::string& workload, const Strategy& s);

    size_t strategyCount() const;

    /** @} */

    /** @name Pattern library
     *  @{ */

    /**
     * Record the patterns a run of @p workload put on its Pareto front.
     * @p bodies are registry scheduling views.  Returns the number of
     * *cross hits*: bodies already in the library from a different
     * workload (the cross-workload matching signal).
     */
    size_t recordMined(const std::string& workload,
                       const std::vector<TermPtr>& bodies);

    /**
     * Library bodies first mined by workloads other than @p workload,
     * in recording order -- the seed set for RiiConfig::seedPatterns.
     */
    std::vector<TermPtr>
    seedPatterns(const std::string& workload) const;

    size_t librarySize() const;

    /** @} */

    /** @name AU chunk memo (rii::AuChunkCache)
     *  @{ */

    const rii::AuCachedChunk* lookup(uint64_t signature) const override;
    void store(uint64_t signature, rii::AuCachedChunk chunk) override;
    size_t chunkCount() const;

    /** @} */

    /** @name Full results
     *  @{ */

    /** The cached result for @p key, or nullptr.  The pointer stays
     *  valid for the corpus's lifetime. */
    const CachedResult* findResult(const std::string& key) const;

    /** Record a result (first store wins; refused past the cap). */
    void storeResult(const std::string& key, CachedResult result);

    size_t resultCount() const;

    /** @} */

    /** @name Named e-graph snapshots
     *  @{ */

    void storeEGraph(const std::string& name, EGraphSnapshot snapshot);
    const EGraphSnapshot* findEGraph(const std::string& name) const;
    size_t egraphCount() const;

    /** @} */

    /**
     * Distinct interned term nodes reachable from corpus-held patterns
     * -- the nodes the corpus's strong references pin across
     * internPurge() (surfaced as the server.corpus_pinned_nodes gauge).
     */
    size_t pinnedNodeCount() const;

 private:
    std::string serializeLocked(const rules::RulesetLibrary& rules) const;

    mutable std::mutex mutex_;
    bool dirty_ = false;
    std::map<std::string, Strategy> strategies_;
    std::vector<LibraryEntry> library_;
    /** Interned canonical body -> library_ index. */
    std::unordered_map<const Term*, size_t> libraryIndex_;
    /** unique_ptr values keep chunk addresses stable across rehash. */
    std::unordered_map<uint64_t, std::unique_ptr<rii::AuCachedChunk>>
        chunks_;
    std::map<std::string, std::unique_ptr<CachedResult>> results_;
    std::map<std::string, EGraphSnapshot> egraphs_;
};

/**
 * Capture a finished run for the Results section.  @pre the run is not
 * degraded (the warm path only stores clean runs).
 */
CachedResult captureResult(const rii::RiiResult& result);

/**
 * Rebuild a RiiResult from a cached one.  The caller re-attaches
 * baseProgram and overwrites stats.seconds with live wall-clock.
 * @throws UserError when the cached registry bodies do not rehydrate to
 * stable ids (a corrupt or cross-build corpus that escaped the frame
 * checks).
 */
rii::RiiResult rehydrateResult(const CachedResult& cached);

}  // namespace corpus
}  // namespace isamore
