#include "corpus/format.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace isamore {
namespace corpus {

uint64_t
fnv1a(const void* data, size_t size, uint64_t seed)
{
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
ByteWriter::u16(uint16_t v)
{
    u8(static_cast<uint8_t>(v));
    u8(static_cast<uint8_t>(v >> 8));
}

void
ByteWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        u8(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        u8(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::f64(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string& v)
{
    u32(static_cast<uint32_t>(v.size()));
    buffer_ += v;
}

const char*
ByteReader::need(size_t n)
{
    if (size_ - pos_ < n) {
        throw UserError(std::string(what_) + ": truncated (need " +
                        std::to_string(n) + " bytes at offset " +
                        std::to_string(pos_) + " of " +
                        std::to_string(size_) + ")");
    }
    const char* at = data_ + pos_;
    pos_ += n;
    return at;
}

uint8_t
ByteReader::u8()
{
    return static_cast<uint8_t>(*need(1));
}

uint16_t
ByteReader::u16()
{
    const char* at = need(2);
    uint16_t v = 0;
    for (int i = 1; i >= 0; --i) {
        v = static_cast<uint16_t>((v << 8) |
                                  static_cast<unsigned char>(at[i]));
    }
    return v;
}

uint32_t
ByteReader::u32()
{
    const char* at = need(4);
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | static_cast<unsigned char>(at[i]);
    }
    return v;
}

uint64_t
ByteReader::u64()
{
    const char* at = need(8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | static_cast<unsigned char>(at[i]);
    }
    return v;
}

double
ByteReader::f64()
{
    const uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
ByteReader::boolean()
{
    const uint8_t v = u8();
    if (v > 1) {
        throw UserError(std::string(what_) + ": corrupt boolean byte " +
                        std::to_string(v));
    }
    return v == 1;
}

std::string
ByteReader::str()
{
    const uint32_t size = u32();
    const char* at = need(size);
    return std::string(at, size);
}

ByteReader
ByteReader::sub(size_t size)
{
    const char* at = need(size);
    return ByteReader(at, size, what_);
}

void
ByteReader::expectEnd() const
{
    if (!atEnd()) {
        throw UserError(std::string(what_) + ": " +
                        std::to_string(remaining()) +
                        " trailing bytes after a complete record");
    }
}

void
ByteReader::checkCount(uint64_t count, size_t perElement) const
{
    if (perElement != 0 && count > remaining() / perElement) {
        throw UserError(std::string(what_) + ": corrupt element count " +
                        std::to_string(count) + " exceeds the " +
                        std::to_string(remaining()) + " bytes left");
    }
}

bool
readFile(const std::string& path, std::string& out, std::string& error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        error = "read error on " + path;
        return false;
    }
    out = buffer.str();
    return true;
}

void
writeFileAtomic(const std::string& path, const std::string& data)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw UserError("corpus: cannot write " + tmp);
        }
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw UserError("corpus: write error on " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw UserError("corpus: cannot rename " + tmp + " to " + path);
    }
}

std::string
frameFile(uint64_t rulesHash, uint64_t opSchemaHash,
          const std::vector<std::pair<SectionTag, std::string>>& sections)
{
    ByteWriter out;
    out.bytes(std::string(kMagic, sizeof(kMagic)));
    out.u32(kFormatVersion);
    out.u64(rulesHash);
    out.u64(opSchemaHash);
    out.u32(static_cast<uint32_t>(sections.size()));
    for (const auto& [tag, payload] : sections) {
        out.u32(static_cast<uint32_t>(tag));
        out.u64(payload.size());
        out.bytes(payload);
    }
    const uint64_t checksum = fnv1a(out.data().data(), out.size());
    out.u64(checksum);
    return out.take();
}

std::vector<std::pair<SectionTag, std::string>>
unframeFile(const std::string& image, uint64_t rulesHash,
            uint64_t opSchemaHash, const std::string& path)
{
    const std::string what = "corpus " + path;
    if (image.size() < sizeof(kMagic) + 4 + 8 + 8 + 4 + 8) {
        throw UserError(what + ": truncated (only " +
                        std::to_string(image.size()) + " bytes)");
    }
    // Checksum first: a flipped byte anywhere must fail identically,
    // regardless of which field it happens to land in.
    const size_t bodySize = image.size() - 8;
    ByteReader trailer(image.data() + bodySize, 8, what.c_str());
    const uint64_t expected = trailer.u64();
    const uint64_t actual = fnv1a(image.data(), bodySize);
    if (expected != actual) {
        throw UserError(what + ": checksum mismatch (file is corrupt)");
    }

    ByteReader in(image.data(), bodySize, what.c_str());
    char magic[sizeof(kMagic)];
    for (size_t i = 0; i < sizeof(kMagic); ++i) {
        magic[i] = static_cast<char>(in.u8());
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw UserError(what + ": bad magic (not a corpus file)");
    }
    const uint32_t version = in.u32();
    if (version != kFormatVersion) {
        throw UserError(what + ": format version " +
                        std::to_string(version) +
                        " unsupported (this build reads version " +
                        std::to_string(kFormatVersion) + ")");
    }
    const uint64_t fileRules = in.u64();
    if (fileRules != rulesHash) {
        throw UserError(what +
                        ": rules hash mismatch (written by a build with "
                        "different rewrite rules; delete or regenerate)");
    }
    const uint64_t fileOps = in.u64();
    if (fileOps != opSchemaHash) {
        throw UserError(what +
                        ": op schema hash mismatch (written by a build "
                        "with a different operator table)");
    }
    const uint32_t count = in.u32();
    in.checkCount(count, 12);
    std::vector<std::pair<SectionTag, std::string>> sections;
    sections.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t tag = in.u32();
        const uint64_t size = in.u64();
        if (size > in.remaining()) {
            throw UserError(what + ": section " + std::to_string(tag) +
                            " overruns the file");
        }
        const size_t offset = bodySize - in.remaining();
        in.sub(static_cast<size_t>(size));
        sections.emplace_back(static_cast<SectionTag>(tag),
                              image.substr(offset, size));
    }
    in.expectEnd();
    return sections;
}

}  // namespace corpus
}  // namespace isamore
