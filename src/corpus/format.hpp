/**
 * @file
 * Binary (de)serialization primitives for the persistent corpus.
 *
 * The corpus file is a little-endian byte stream:
 *
 *   magic (8 bytes "ISAMCRP\n") | formatVersion u32 | rulesHash u64 |
 *   opSchemaHash u64 | sectionCount u32 |
 *   { sectionTag u32 | byteLength u64 | payload } * |
 *   checksum u64 (FNV-1a over every preceding byte)
 *
 * Every read is bounds-checked; any mismatch -- bad magic, stale format
 * version, a rules/op-schema hash from a different build, a truncated
 * stream, or a checksum failure -- throws UserError so callers refuse
 * the entire file (exit-code 3, "invalid input") without taking any
 * partial state.  Writers always serialize into memory first and
 * publish via write-to-temporary + atomic rename, so a crashed writer
 * can never leave a half-written corpus behind.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace isamore {
namespace corpus {

/** File magic; the trailing newline catches ASCII-mode corruption. */
inline constexpr char kMagic[8] = {'I', 'S', 'A', 'M', 'C', 'R', 'P', '\n'};

/** Bumped on any incompatible layout change; old files are refused. */
inline constexpr uint32_t kFormatVersion = 1;

/** Section tags (u32, stable). */
enum class SectionTag : uint32_t {
    Strategies = 1,  ///< per-workload-class tuned EqSat strategies
    Library = 2,     ///< accumulated cross-workload pattern library
    AuChunks = 3,    ///< AU sweep chunk memo keyed by trace signature
    Results = 4,     ///< full analysis results keyed by analysis key
    EGraphs = 5,     ///< named e-graph snapshots
};

/** FNV-1a 64-bit over a byte range. */
uint64_t fnv1a(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ull);

/** Append-only little-endian byte sink. */
class ByteWriter {
 public:
    void u8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    /** Doubles travel as raw bit patterns (NaN/-0.0 round-trip exactly,
     *  matching Payload's bit-pattern equality). */
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    /** Length-prefixed UTF-8 string. */
    void str(const std::string& v);
    void bytes(const std::string& v) { buffer_ += v; }

    const std::string& data() const { return buffer_; }
    std::string take() { return std::move(buffer_); }
    size_t size() const { return buffer_.size(); }

 private:
    std::string buffer_;
};

/** Bounds-checked reader over a byte range; throws UserError on overrun. */
class ByteReader {
 public:
    ByteReader(const char* data, size_t size, const char* what = "corpus")
        : data_(data), size_(size), what_(what)
    {}
    explicit ByteReader(const std::string& data,
                        const char* what = "corpus")
        : ByteReader(data.data(), data.size(), what)
    {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64();
    bool boolean();
    std::string str();

    /** A bounded sub-reader over the next @p size bytes. */
    ByteReader sub(size_t size);

    size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }
    /** Throw unless the reader consumed exactly its range. */
    void expectEnd() const;

    /**
     * Guard for length-prefixed containers: a corrupt count must fail
     * here, not after allocating count elements.  @p perElement is the
     * minimum serialized size of one element.
     */
    void checkCount(uint64_t count, size_t perElement) const;

 private:
    const char* need(size_t n);

    const char* data_;
    size_t size_;
    size_t pos_ = 0;
    const char* what_;
};

/**
 * Read a whole file into @p out.  Returns false (with @p error set to a
 * message naming the path) when the file cannot be opened or read.
 */
bool readFile(const std::string& path, std::string& out,
              std::string& error);

/**
 * Write @p data to @p path atomically: serialize to "<path>.tmp", then
 * rename over the destination.  @throws UserError naming the path on
 * any I/O failure.
 */
void writeFileAtomic(const std::string& path, const std::string& data);

/** Frame @p sections (tag, payload) into a complete corpus file image. */
std::string frameFile(uint64_t rulesHash, uint64_t opSchemaHash,
                      const std::vector<std::pair<SectionTag, std::string>>&
                          sections);

/**
 * Validate a complete corpus file image (magic, version, hashes,
 * checksum) and return its sections.  @throws UserError on any
 * mismatch; the message names @p path.
 */
std::vector<std::pair<SectionTag, std::string>>
unframeFile(const std::string& image, uint64_t rulesHash,
            uint64_t opSchemaHash, const std::string& path);

}  // namespace corpus
}  // namespace isamore
