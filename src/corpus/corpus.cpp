#include "corpus/corpus.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <sstream>
#include <unordered_set>

#include "dsl/intern.hpp"
#include "support/hashing.hpp"

namespace isamore {
namespace corpus {
namespace {

/** Entry caps: stores past these are refused (never evicted, so chunk
 *  pointers handed to the AU sweep stay valid for the corpus lifetime). */
constexpr size_t kMaxChunks = 4096;
constexpr size_t kMaxLibrary = 4096;
constexpr size_t kMaxResults = 256;
constexpr size_t kMaxEGraphs = 64;

/** Pool id for a null TermPtr. */
constexpr uint32_t kNullTerm = 0xFFFFFFFFu;

uint64_t
doubleBits(double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

uint64_t
stringHash(const std::string& s)
{
    return fnv1a(s.data(), s.size());
}

// ---------------------------------------------------------------------
// Scalar payload / e-node primitives shared by the term pool and the
// e-graph snapshot codecs.

void
writePayload(ByteWriter& out, const Payload& payload)
{
    out.u8(static_cast<uint8_t>(payload.kind));
    switch (payload.kind) {
      case Payload::Kind::None:
        break;
      case Payload::Kind::Int:
        out.i64(payload.a);
        break;
      case Payload::Kind::Float:
        // Raw bits: NaN and -0.0 round-trip exactly, matching Payload's
        // bit-pattern equality and hashing.
        out.f64(payload.f);
        break;
      case Payload::Kind::Pair:
        out.i64(payload.a);
        out.i64(payload.b);
        break;
    }
}

Payload
readPayload(ByteReader& in, const std::string& what)
{
    switch (in.u8()) {
      case static_cast<uint8_t>(Payload::Kind::None):
        return Payload::none();
      case static_cast<uint8_t>(Payload::Kind::Int):
        return Payload::ofInt(in.i64());
      case static_cast<uint8_t>(Payload::Kind::Float):
        return Payload::ofFloat(in.f64());
      case static_cast<uint8_t>(Payload::Kind::Pair): {
        const int64_t a = in.i64();
        const int64_t b = in.i64();
        return Payload::ofPair(a, b);
      }
      default:
        throw UserError(what + ": corrupt payload kind");
    }
}

Op
readOp(ByteReader& in, const std::string& what)
{
    const uint16_t op = in.u16();
    if (op >= kNumOps) {
        throw UserError(what + ": operator index " + std::to_string(op) +
                        " out of range");
    }
    return static_cast<Op>(op);
}

void
writeENode(ByteWriter& out, const ENode& node)
{
    out.u16(static_cast<uint16_t>(node.op));
    writePayload(out, node.payload);
    out.u32(static_cast<uint32_t>(node.children.size()));
    for (const EClassId child : node.children) {
        out.u32(child);
    }
}

ENode
readENode(ByteReader& in, uint32_t numIds, const std::string& what)
{
    ENode node;
    node.op = readOp(in, what);
    node.payload = readPayload(in, what);
    const uint32_t count = in.u32();
    in.checkCount(count, 4);
    node.children.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const EClassId child = in.u32();
        if (child >= numIds) {
            throw UserError(what + ": e-node child out of range");
        }
        node.children.push_back(child);
    }
    return node;
}

// ---------------------------------------------------------------------
// Term pool: one DAG-preserving table of term nodes per section.  Nodes
// are written children-before-parents; pointer identity inside the pool
// captures sharing exactly, so restored uninterned DAGs keep the
// topology the pointer-counting cost model observes.

class TermPoolWriter {
 public:
    uint32_t
    id(const TermPtr& term)
    {
        if (term == nullptr) {
            return kNullTerm;
        }
        const auto it = ids_.find(term.get());
        if (it != ids_.end()) {
            return it->second;
        }
        for (const TermPtr& child : term->children) {
            id(child);
        }
        const uint32_t fresh = static_cast<uint32_t>(nodes_.size());
        ids_.emplace(term.get(), fresh);
        nodes_.push_back(term.get());
        return fresh;
    }

    void
    serialize(ByteWriter& out) const
    {
        out.u32(static_cast<uint32_t>(nodes_.size()));
        for (const Term* node : nodes_) {
            out.u16(static_cast<uint16_t>(node->op));
            writePayload(out, node->payload);
            out.boolean(node->interned);
            out.u32(static_cast<uint32_t>(node->children.size()));
            for (const TermPtr& child : node->children) {
                out.u32(ids_.at(child.get()));
            }
        }
    }

 private:
    std::unordered_map<const Term*, uint32_t> ids_;
    std::vector<const Term*> nodes_;
};

class TermPoolReader {
 public:
    static TermPoolReader
    deserialize(ByteReader& in, const std::string& what)
    {
        TermPoolReader pool;
        const uint32_t count = in.u32();
        in.checkCount(count, 8);
        pool.terms_.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            const Op op = readOp(in, what);
            Payload payload = readPayload(in, what);
            const bool interned = in.boolean();
            const uint32_t childCount = in.u32();
            in.checkCount(childCount, 4);
            const int arity = opArity(op);
            if (arity >= 0 && childCount != static_cast<uint32_t>(arity)) {
                throw UserError(what + ": term arity mismatch for " +
                                std::string(opName(op)));
            }
            std::vector<TermPtr> children;
            children.reserve(childCount);
            for (uint32_t c = 0; c < childCount; ++c) {
                const uint32_t child = in.u32();
                if (child >= pool.terms_.size()) {
                    throw UserError(
                        what + ": term child precedes its definition");
                }
                children.push_back(pool.terms_[child]);
            }
            pool.terms_.push_back(
                interned ? makeTerm(op, payload, std::move(children))
                         : makeTermUninterned(op, payload,
                                              std::move(children)));
        }
        return pool;
    }

    TermPtr
    get(uint32_t id, const std::string& what) const
    {
        if (id == kNullTerm) {
            return nullptr;
        }
        if (id >= terms_.size()) {
            throw UserError(what + ": term reference out of range");
        }
        return terms_[id];
    }

 private:
    std::vector<TermPtr> terms_;
};

// ---------------------------------------------------------------------
// rii-type codecs.

void
writeSolution(ByteWriter& out, TermPoolWriter& pool,
              const rii::Solution& s)
{
    out.u32(static_cast<uint32_t>(s.patternIds.size()));
    for (const int64_t id : s.patternIds) {
        out.i64(id);
    }
    out.f64(s.deltaNs);
    out.f64(s.speedup);
    out.f64(s.areaUm2);
    out.u32(pool.id(s.program));
    out.u32(static_cast<uint32_t>(s.useCounts.size()));
    for (const size_t n : s.useCounts) {
        out.u64(n);
    }
}

rii::Solution
readSolution(ByteReader& in, const TermPoolReader& pool,
             const std::string& what)
{
    rii::Solution s;
    const uint32_t ids = in.u32();
    in.checkCount(ids, 8);
    s.patternIds.reserve(ids);
    for (uint32_t i = 0; i < ids; ++i) {
        s.patternIds.push_back(in.i64());
    }
    s.deltaNs = in.f64();
    s.speedup = in.f64();
    s.areaUm2 = in.f64();
    s.program = pool.get(in.u32(), what);
    const uint32_t uses = in.u32();
    in.checkCount(uses, 8);
    s.useCounts.reserve(uses);
    for (uint32_t i = 0; i < uses; ++i) {
        s.useCounts.push_back(in.u64());
    }
    return s;
}

void
writeStats(ByteWriter& out, const rii::RiiStats& stats)
{
    out.u64(stats.origNodes);
    out.u64(stats.origClasses);
    out.u64(stats.peakNodes);
    out.u64(stats.peakClasses);
    out.u64(stats.rawCandidates);
    out.u64(stats.dedupedCandidates);
    out.u64(stats.phasesRun);
    out.boolean(stats.auAborted);
    out.f64(stats.seconds);
    out.u64(stats.peakRssBytes);
    out.u64(stats.packsCreated);
    out.u32(static_cast<uint32_t>(stats.ruleTotals.size()));
    for (const auto& [name, totals] : stats.ruleTotals) {
        out.str(name);
        out.u64(totals.matches);
        out.u64(totals.applications);
        out.u64(totals.bans);
        out.u64(totals.cacheSkips);
    }
}

rii::RiiStats
readStats(ByteReader& in)
{
    rii::RiiStats stats;
    stats.origNodes = in.u64();
    stats.origClasses = in.u64();
    stats.peakNodes = in.u64();
    stats.peakClasses = in.u64();
    stats.rawCandidates = in.u64();
    stats.dedupedCandidates = in.u64();
    stats.phasesRun = in.u64();
    stats.auAborted = in.boolean();
    stats.seconds = in.f64();
    stats.peakRssBytes = in.u64();
    stats.packsCreated = in.u64();
    const uint32_t rules = in.u32();
    in.checkCount(rules, 36);
    for (uint32_t i = 0; i < rules; ++i) {
        std::string name = in.str();
        RuleTotals totals;
        totals.matches = in.u64();
        totals.applications = in.u64();
        totals.bans = in.u64();
        totals.cacheSkips = in.u64();
        stats.ruleTotals.emplace(std::move(name), totals);
    }
    return stats;
}

void
writeDiagnostics(ByteWriter& out, const rii::RunDiagnostics& diag)
{
    out.u32(static_cast<uint32_t>(diag.lastEqSatStop));
    out.u64(diag.eqsatNodeTrips);
    out.u64(diag.eqsatTimeouts);
    out.u64(diag.skippedRules);
    out.u64(diag.skippedPairs);
    out.u64(diag.skippedPatterns);
    out.u64(diag.skippedPhases);
    out.u64(diag.faultsInjected);
    out.boolean(diag.auBudgetTripped);
    out.boolean(diag.auTimedOut);
    out.boolean(diag.selectionTruncated);
    out.boolean(diag.budgetExhausted);
}

rii::RunDiagnostics
readDiagnostics(ByteReader& in, const std::string& what)
{
    rii::RunDiagnostics diag;
    const uint32_t stop = in.u32();
    if (stop > static_cast<uint32_t>(StopReason::Budget)) {
        throw UserError(what + ": corrupt stop reason");
    }
    diag.lastEqSatStop = static_cast<StopReason>(stop);
    diag.eqsatNodeTrips = in.u64();
    diag.eqsatTimeouts = in.u64();
    diag.skippedRules = in.u64();
    diag.skippedPairs = in.u64();
    diag.skippedPatterns = in.u64();
    diag.skippedPhases = in.u64();
    diag.faultsInjected = in.u64();
    diag.auBudgetTripped = in.boolean();
    diag.auTimedOut = in.boolean();
    diag.selectionTruncated = in.boolean();
    diag.budgetExhausted = in.boolean();
    return diag;
}

void
writeEval(ByteWriter& out, TermPoolWriter& pool, const rii::PatternEval& e)
{
    out.i64(e.id);
    out.u32(pool.id(e.body));
    out.u64(e.opCount);
    out.i64(e.hw.cycles);
    out.f64(e.hw.latencyNs);
    out.f64(e.hw.areaUm2);
    out.i64(e.hw.initiationInterval);
    out.u32(static_cast<uint32_t>(e.uses.size()));
    for (const rii::UseSite& use : e.uses) {
        out.u32(use.klass);
        out.i64(use.func);
        out.u32(use.block);
        out.u64(use.execCount);
        out.f64(use.cpoCycles);
        out.f64(use.savedNs);
    }
    out.f64(e.deltaNs);
}

rii::PatternEval
readEval(ByteReader& in, const TermPoolReader& pool,
         const std::string& what)
{
    rii::PatternEval e;
    e.id = in.i64();
    e.body = pool.get(in.u32(), what);
    e.opCount = in.u64();
    e.hw.cycles = static_cast<int>(in.i64());
    e.hw.latencyNs = in.f64();
    e.hw.areaUm2 = in.f64();
    e.hw.initiationInterval = static_cast<int>(in.i64());
    const uint32_t uses = in.u32();
    in.checkCount(uses, 40);
    e.uses.reserve(uses);
    for (uint32_t i = 0; i < uses; ++i) {
        rii::UseSite use;
        use.klass = in.u32();
        use.func = static_cast<int>(in.i64());
        use.block = in.u32();
        use.execCount = in.u64();
        use.cpoCycles = in.f64();
        use.savedNs = in.f64();
        e.uses.push_back(use);
    }
    e.deltaNs = in.f64();
    return e;
}

void
writeCachedResult(ByteWriter& out, TermPoolWriter& pool,
                  const CachedResult& result)
{
    out.u32(static_cast<uint32_t>(result.registryBodies.size()));
    for (const TermPtr& body : result.registryBodies) {
        out.u32(pool.id(body));
    }
    out.u32(static_cast<uint32_t>(result.front.size()));
    for (const rii::Solution& s : result.front) {
        writeSolution(out, pool, s);
    }
    writeStats(out, result.stats);
    writeDiagnostics(out, result.diagnostics);
    out.u32(static_cast<uint32_t>(result.evaluations.size()));
    for (const auto& [id, eval] : result.evaluations) {
        out.i64(id);
        writeEval(out, pool, eval);
    }
}

CachedResult
readCachedResult(ByteReader& in, const TermPoolReader& pool,
                 const std::string& what)
{
    CachedResult result;
    const uint32_t bodies = in.u32();
    in.checkCount(bodies, 4);
    result.registryBodies.reserve(bodies);
    for (uint32_t i = 0; i < bodies; ++i) {
        TermPtr body = pool.get(in.u32(), what);
        if (body == nullptr) {
            throw UserError(what + ": null registry body");
        }
        result.registryBodies.push_back(std::move(body));
    }
    const uint32_t front = in.u32();
    in.checkCount(front, 40);
    result.front.reserve(front);
    for (uint32_t i = 0; i < front; ++i) {
        result.front.push_back(readSolution(in, pool, what));
    }
    result.stats = readStats(in);
    result.diagnostics = readDiagnostics(in, what);
    const uint32_t evals = in.u32();
    in.checkCount(evals, 60);
    result.evaluations.reserve(evals);
    for (uint32_t i = 0; i < evals; ++i) {
        const int64_t id = in.i64();
        result.evaluations.emplace_back(id, readEval(in, pool, what));
    }
    return result;
}

void
writeSnapshot(ByteWriter& out, const EGraphSnapshot& snap)
{
    out.u64(snap.clock);
    out.u64(snap.version);
    out.u32(snap.numIds);
    for (const EClassId parent : snap.unionFind) {
        out.u32(parent);
    }
    for (const uint64_t stamp : snap.stamps) {
        out.u64(stamp);
    }
    out.u32(static_cast<uint32_t>(snap.classes.size()));
    for (const EGraphSnapshot::ClassImage& image : snap.classes) {
        out.u32(image.id);
        out.u32(static_cast<uint32_t>(image.nodes.size()));
        for (const ENode& node : image.nodes) {
            writeENode(out, node);
        }
        out.u32(static_cast<uint32_t>(image.parents.size()));
        for (const auto& [pnode, pclass] : image.parents) {
            writeENode(out, pnode);
            out.u32(pclass);
        }
    }
}

EGraphSnapshot
readSnapshot(ByteReader& in, const std::string& what)
{
    EGraphSnapshot snap;
    snap.clock = in.u64();
    snap.version = in.u64();
    snap.numIds = in.u32();
    in.checkCount(snap.numIds, 4 + 8 * EGraph::kStampDepths);
    snap.unionFind.reserve(snap.numIds);
    for (uint32_t i = 0; i < snap.numIds; ++i) {
        snap.unionFind.push_back(in.u32());
    }
    snap.stamps.reserve(static_cast<size_t>(snap.numIds) *
                        EGraph::kStampDepths);
    for (size_t i = 0;
         i < static_cast<size_t>(snap.numIds) * EGraph::kStampDepths; ++i) {
        snap.stamps.push_back(in.u64());
    }
    const uint32_t classes = in.u32();
    in.checkCount(classes, 12);
    snap.classes.reserve(classes);
    for (uint32_t c = 0; c < classes; ++c) {
        EGraphSnapshot::ClassImage image;
        image.id = in.u32();
        const uint32_t nodes = in.u32();
        in.checkCount(nodes, 7);
        image.nodes.reserve(nodes);
        for (uint32_t i = 0; i < nodes; ++i) {
            image.nodes.push_back(readENode(in, snap.numIds, what));
        }
        const uint32_t parents = in.u32();
        in.checkCount(parents, 11);
        image.parents.reserve(parents);
        for (uint32_t i = 0; i < parents; ++i) {
            ENode node = readENode(in, snap.numIds, what);
            const EClassId pclass = in.u32();
            image.parents.emplace_back(std::move(node), pclass);
        }
        snap.classes.push_back(std::move(image));
    }
    // Structural consistency (canonical ids, child ranges) is enforced a
    // second time by EGraph::restoreSnapshot before any graph mutates.
    return snap;
}

uint64_t
hashEqSatLimits(const EqSatLimits& limits)
{
    uint64_t h = mix64(0x65713464ull);
    h = hashCombine(h, limits.maxNodes);
    h = hashCombine(h, limits.maxIterations);
    h = hashCombine(h, doubleBits(limits.maxSeconds));
    h = hashCombine(h, limits.maxMatchesPerRule);
    h = hashCombine(h, limits.useBackoff ? 1 : 0);
    h = hashCombine(h, limits.incrementalSearch ? 1 : 0);
    h = hashCombine(h, stringHash(limits.strategy.encode()));
    return h;
}

uint64_t
hashAuOptions(const rii::AuOptions& au)
{
    // au.threads and au.chunkCache are deliberately absent: thread count
    // and cache hits are behaviour-invariant by the sweep's contract.
    uint64_t h = mix64(0x61753634ull);
    h = hashCombine(h, static_cast<uint64_t>(au.sampling));
    h = hashCombine(h, au.typeFilter ? 1 : 0);
    h = hashCombine(h, au.hashFilter ? 1 : 0);
    h = hashCombine(h, static_cast<uint64_t>(au.hammingThreshold));
    h = hashCombine(h, static_cast<uint64_t>(au.maxDepth));
    h = hashCombine(h, au.maxPairs);
    h = hashCombine(h, au.quadraticPairLimit);
    h = hashCombine(h, au.bandingWindow);
    h = hashCombine(h, au.maxCandidates);
    h = hashCombine(h, au.maxPatternsPerPair);
    h = hashCombine(h, au.maxResultPatterns);
    h = hashCombine(h, static_cast<uint64_t>(au.kdDims));
    h = hashCombine(h, static_cast<uint64_t>(au.kdBeta));
    h = hashCombine(h, au.minOps);
    h = hashCombine(h, doubleBits(au.maxSeconds));
    h = hashCombine(h, doubleBits(au.maxSecondsPerPair));
    return h;
}

}  // namespace

uint64_t
rulesFingerprint(const rules::RulesetLibrary& rules)
{
    uint64_t h = mix64(0x72756c65ull);
    for (const RewriteRule& rule : rules.all()) {
        h = hashCombine(h, stringHash(rule.name));
        h = hashCombine(h, rule.flags);
        h = hashCombine(h, stringHash(termToString(rule.lhs)));
        h = hashCombine(h, stringHash(termToString(rule.rhs)));
    }
    return h;
}

uint64_t
opSchemaFingerprint()
{
    uint64_t h = mix64(0x6f707363ull);
    for (size_t i = 0; i < kNumOps; ++i) {
        const OpInfo& info = opInfo(static_cast<Op>(i));
        h = hashCombine(h, i);
        h = hashCombine(h, fnv1a(info.name.data(), info.name.size()));
        h = hashCombine(h, static_cast<uint64_t>(
                               static_cast<int64_t>(info.arity)));
        h = hashCombine(h, info.flags);
    }
    return h;
}

uint64_t
programFingerprint(const AnalyzedWorkload& analyzed)
{
    const frontend::EncodedProgram& program = analyzed.program;
    const EGraph& egraph = program.egraph;
    uint64_t h = mix64(0x70726f67ull);
    for (const EClassId id : egraph.classIds()) {
        h = hashCombine(h, id);
        for (const ENode& node : egraph.cls(id).nodes) {
            h = hashCombine(h, node.hash());
        }
    }
    h = hashCombine(h, egraph.find(program.root));
    for (const EClassId root : program.functionRoots) {
        h = hashCombine(h, egraph.find(root));
    }
    for (const frontend::Site& site : program.sites) {
        h = hashCombine(h, egraph.find(site.klass));
        h = hashCombine(h, static_cast<uint64_t>(
                               static_cast<int64_t>(site.func)));
        h = hashCombine(h, site.block);
    }
    h = hashCombine(h, doubleBits(analyzed.profile.totalNs()));
    h = hashCombine(h, analyzed.irInstructions);
    return h;
}

uint64_t
configFingerprint(const rii::RiiConfig& config)
{
    uint64_t h = mix64(0x636f6e66ull);
    h = hashCombine(h, static_cast<uint64_t>(config.mode));
    h = hashCombine(h, static_cast<uint64_t>(
                           static_cast<int64_t>(config.maxPhases)));
    h = hashCombine(h, config.rulesPerPhase);
    h = hashCombine(h, hashEqSatLimits(config.eqsat));
    h = hashCombine(h, hashAuOptions(config.au));
    h = hashCombine(h, config.select.beamK);
    h = hashCombine(h, config.select.maxRounds);
    h = hashCombine(h, config.select.astSizeObjective ? 1 : 0);
    h = hashCombine(h, doubleBits(config.select.maxSeconds));
    h = hashCombine(h, static_cast<uint64_t>(
                           static_cast<int64_t>(config.vectorize.lanes)));
    h = hashCombine(h, config.vectorize.maxPacks);
    h = hashCombine(h, hashAuOptions(config.vectorize.seedAu));
    h = hashCombine(h, hashEqSatLimits(config.vectorize.liftLimits));
    h = hashCombine(h, doubleBits(config.budget.maxSeconds));
    h = hashCombine(h, config.budget.maxUnits);
    h = hashCombine(h, config.budget.maxRssBytes);
    h = hashCombine(h, doubleBits(config.invokeOverheadNs));
    h = hashCombine(h, config.maxCostedCandidates);
    h = hashCombine(h, config.seedPatterns.size());
    for (const TermPtr& seed : config.seedPatterns) {
        h = hashCombine(h, termHashDeep(seed));
    }
    return h;
}

std::string
resultKey(const std::string& workload, uint64_t programFp, rii::Mode mode,
          uint64_t rulesFp, uint64_t configFp)
{
    std::ostringstream os;
    os << workload << '\x1f' << rii::modeName(mode) << '\x1f' << std::hex
       << programFp << '\x1f' << rulesFp << '\x1f' << configFp;
    return os.str();
}

// ---------------------------------------------------------------------
// Corpus.

void
Corpus::load(const std::string& path, const rules::RulesetLibrary& rules)
{
    std::string image;
    std::string error;
    if (!readFile(path, image, error)) {
        throw UserError("corpus: " + error);
    }
    const auto sections =
        unframeFile(image, rulesFingerprint(rules), opSchemaFingerprint(),
                    path);
    const std::string what = "corpus " + path;

    // Parse everything into locals; state swaps in only after the whole
    // file validated (the no-partial-loads contract).
    std::map<std::string, Strategy> strategies;
    std::vector<LibraryEntry> library;
    std::unordered_map<const Term*, size_t> libraryIndex;
    std::unordered_map<uint64_t, std::unique_ptr<rii::AuCachedChunk>>
        chunks;
    std::map<std::string, std::unique_ptr<CachedResult>> results;
    std::map<std::string, EGraphSnapshot> egraphs;

    for (const auto& [tag, payload] : sections) {
        ByteReader in(payload, what.c_str());
        switch (tag) {
          case SectionTag::Strategies: {
            const uint32_t count = in.u32();
            in.checkCount(count, 8);
            for (uint32_t i = 0; i < count; ++i) {
                std::string workload = in.str();
                const std::string text = in.str();
                std::string parseError;
                auto strategy = parseStrategy(text, parseError);
                if (!strategy.has_value()) {
                    throw UserError(what + ": corrupt strategy for \"" +
                                    workload + "\": " + parseError);
                }
                strategies[std::move(workload)] = std::move(*strategy);
            }
            break;
          }
          case SectionTag::Library: {
            const TermPoolReader pool =
                TermPoolReader::deserialize(in, what);
            const uint32_t count = in.u32();
            in.checkCount(count, 16);
            for (uint32_t i = 0; i < count; ++i) {
                LibraryEntry entry;
                entry.body = pool.get(in.u32(), what);
                if (entry.body == nullptr) {
                    throw UserError(what + ": null library body");
                }
                entry.workload = in.str();
                entry.seen = in.u64();
                entry.canonical = internTerm(entry.body);
                if (libraryIndex.count(entry.canonical.get()) != 0) {
                    throw UserError(what + ": duplicate library body");
                }
                libraryIndex.emplace(entry.canonical.get(),
                                     library.size());
                library.push_back(std::move(entry));
            }
            break;
          }
          case SectionTag::AuChunks: {
            const TermPoolReader pool =
                TermPoolReader::deserialize(in, what);
            const uint32_t count = in.u32();
            in.checkCount(count, 36);
            for (uint32_t i = 0; i < count; ++i) {
                const uint64_t signature = in.u64();
                auto chunk = std::make_unique<rii::AuCachedChunk>();
                chunk->units = in.u64();
                chunk->memoHits = in.u64();
                chunk->memoMisses = in.u64();
                const uint32_t pairs = in.u32();
                in.checkCount(pairs, 12);
                chunk->pairs.reserve(pairs);
                for (uint32_t p = 0; p < pairs; ++p) {
                    rii::AuCachedPair pair;
                    pair.rawCandidates = in.u64();
                    const uint32_t patterns = in.u32();
                    in.checkCount(patterns, 4);
                    pair.patterns.reserve(patterns);
                    for (uint32_t k = 0; k < patterns; ++k) {
                        TermPtr pattern = pool.get(in.u32(), what);
                        if (pattern == nullptr) {
                            throw UserError(what +
                                            ": null chunk pattern");
                        }
                        pair.patterns.push_back(std::move(pattern));
                    }
                    chunk->pairs.push_back(std::move(pair));
                }
                if (!chunks.emplace(signature, std::move(chunk)).second) {
                    throw UserError(what + ": duplicate chunk signature");
                }
            }
            break;
          }
          case SectionTag::Results: {
            const TermPoolReader pool =
                TermPoolReader::deserialize(in, what);
            const uint32_t count = in.u32();
            in.checkCount(count, 8);
            for (uint32_t i = 0; i < count; ++i) {
                std::string key = in.str();
                auto result = std::make_unique<CachedResult>(
                    readCachedResult(in, pool, what));
                if (!results.emplace(std::move(key), std::move(result))
                         .second) {
                    throw UserError(what + ": duplicate result key");
                }
            }
            break;
          }
          case SectionTag::EGraphs: {
            const uint32_t count = in.u32();
            in.checkCount(count, 24);
            for (uint32_t i = 0; i < count; ++i) {
                std::string name = in.str();
                EGraphSnapshot snap = readSnapshot(in, what);
                if (!egraphs.emplace(std::move(name), std::move(snap))
                         .second) {
                    throw UserError(what + ": duplicate e-graph name");
                }
            }
            break;
          }
          default:
            throw UserError(what + ": unknown section tag " +
                            std::to_string(static_cast<uint32_t>(tag)));
        }
        in.expectEnd();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    strategies_ = std::move(strategies);
    library_ = std::move(library);
    libraryIndex_ = std::move(libraryIndex);
    chunks_ = std::move(chunks);
    results_ = std::move(results);
    egraphs_ = std::move(egraphs);
    dirty_ = false;
}

std::string
Corpus::serializeLocked(const rules::RulesetLibrary& rules) const
{
    std::vector<std::pair<SectionTag, std::string>> sections;

    {
        ByteWriter out;
        out.u32(static_cast<uint32_t>(strategies_.size()));
        for (const auto& [workload, strategy] : strategies_) {
            out.str(workload);
            out.str(strategy.encode());
        }
        sections.emplace_back(SectionTag::Strategies, out.take());
    }
    {
        TermPoolWriter pool;
        ByteWriter body;
        body.u32(static_cast<uint32_t>(library_.size()));
        for (const LibraryEntry& entry : library_) {
            body.u32(pool.id(entry.body));
            body.str(entry.workload);
            body.u64(entry.seen);
        }
        ByteWriter out;
        pool.serialize(out);
        out.bytes(body.take());
        sections.emplace_back(SectionTag::Library, out.take());
    }
    {
        TermPoolWriter pool;
        ByteWriter body;
        body.u32(static_cast<uint32_t>(chunks_.size()));
        // std::map-like determinism for the unordered store: write in
        // ascending signature order so save() output is reproducible.
        std::vector<uint64_t> signatures;
        signatures.reserve(chunks_.size());
        for (const auto& [signature, chunk] : chunks_) {
            signatures.push_back(signature);
        }
        std::sort(signatures.begin(), signatures.end());
        for (const uint64_t signature : signatures) {
            const rii::AuCachedChunk& chunk = *chunks_.at(signature);
            body.u64(signature);
            body.u64(chunk.units);
            body.u64(chunk.memoHits);
            body.u64(chunk.memoMisses);
            body.u32(static_cast<uint32_t>(chunk.pairs.size()));
            for (const rii::AuCachedPair& pair : chunk.pairs) {
                body.u64(pair.rawCandidates);
                body.u32(static_cast<uint32_t>(pair.patterns.size()));
                for (const TermPtr& pattern : pair.patterns) {
                    body.u32(pool.id(pattern));
                }
            }
        }
        ByteWriter out;
        pool.serialize(out);
        out.bytes(body.take());
        sections.emplace_back(SectionTag::AuChunks, out.take());
    }
    {
        TermPoolWriter pool;
        ByteWriter body;
        body.u32(static_cast<uint32_t>(results_.size()));
        for (const auto& [key, result] : results_) {
            body.str(key);
            writeCachedResult(body, pool, *result);
        }
        ByteWriter out;
        pool.serialize(out);
        out.bytes(body.take());
        sections.emplace_back(SectionTag::Results, out.take());
    }
    {
        ByteWriter out;
        out.u32(static_cast<uint32_t>(egraphs_.size()));
        for (const auto& [name, snap] : egraphs_) {
            out.str(name);
            writeSnapshot(out, snap);
        }
        sections.emplace_back(SectionTag::EGraphs, out.take());
    }

    return frameFile(rulesFingerprint(rules), opSchemaFingerprint(),
                     sections);
}

void
Corpus::save(const std::string& path, const rules::RulesetLibrary& rules)
{
    std::string image;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        image = serializeLocked(rules);
        dirty_ = false;
    }
    writeFileAtomic(path, image);
}

bool
Corpus::dirty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dirty_;
}

std::optional<Strategy>
Corpus::strategyFor(const std::string& workload) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = strategies_.find(workload);
    if (it == strategies_.end()) {
        it = strategies_.find("global");
    }
    if (it == strategies_.end()) {
        return std::nullopt;
    }
    return it->second;
}

void
Corpus::recordStrategy(const std::string& workload, const Strategy& s)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = strategies_.find(workload);
    if (it != strategies_.end() && it->second == s) {
        return;
    }
    strategies_[workload] = s;
    dirty_ = true;
}

size_t
Corpus::strategyCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return strategies_.size();
}

size_t
Corpus::recordMined(const std::string& workload,
                    const std::vector<TermPtr>& bodies)
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t crossHits = 0;
    for (const TermPtr& body : bodies) {
        if (body == nullptr) {
            continue;
        }
        const TermPtr canonical = internTerm(body);
        const auto it = libraryIndex_.find(canonical.get());
        if (it != libraryIndex_.end()) {
            LibraryEntry& entry = library_[it->second];
            ++entry.seen;
            if (entry.workload != workload) {
                ++crossHits;
            }
            dirty_ = true;
            continue;
        }
        if (library_.size() >= kMaxLibrary) {
            continue;
        }
        LibraryEntry entry;
        entry.body = body;
        entry.canonical = canonical;
        entry.workload = workload;
        libraryIndex_.emplace(canonical.get(), library_.size());
        library_.push_back(std::move(entry));
        dirty_ = true;
    }
    return crossHits;
}

std::vector<TermPtr>
Corpus::seedPatterns(const std::string& workload) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TermPtr> seeds;
    for (const LibraryEntry& entry : library_) {
        if (entry.workload != workload) {
            seeds.push_back(entry.body);
        }
    }
    return seeds;
}

size_t
Corpus::librarySize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return library_.size();
}

const rii::AuCachedChunk*
Corpus::lookup(uint64_t signature) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = chunks_.find(signature);
    return it == chunks_.end() ? nullptr : it->second.get();
}

void
Corpus::store(uint64_t signature, rii::AuCachedChunk chunk)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunks_.size() >= kMaxChunks ||
        chunks_.count(signature) != 0) {
        return;
    }
    chunks_.emplace(signature, std::make_unique<rii::AuCachedChunk>(
                                   std::move(chunk)));
    dirty_ = true;
}

size_t
Corpus::chunkCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return chunks_.size();
}

const CachedResult*
Corpus::findResult(const std::string& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = results_.find(key);
    return it == results_.end() ? nullptr : it->second.get();
}

void
Corpus::storeResult(const std::string& key, CachedResult result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (results_.size() >= kMaxResults || results_.count(key) != 0) {
        return;
    }
    results_.emplace(key,
                     std::make_unique<CachedResult>(std::move(result)));
    dirty_ = true;
}

size_t
Corpus::resultCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

void
Corpus::storeEGraph(const std::string& name, EGraphSnapshot snapshot)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (egraphs_.size() >= kMaxEGraphs && egraphs_.count(name) == 0) {
        return;
    }
    egraphs_[name] = std::move(snapshot);
    dirty_ = true;
}

const EGraphSnapshot*
Corpus::findEGraph(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = egraphs_.find(name);
    return it == egraphs_.end() ? nullptr : &it->second;
}

size_t
Corpus::egraphCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return egraphs_.size();
}

size_t
Corpus::pinnedNodeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_set<const Term*> seen;
    size_t interned = 0;
    const std::function<void(const TermPtr&)> walk =
        [&](const TermPtr& term) {
            if (term == nullptr || !seen.insert(term.get()).second) {
                return;
            }
            if (term->interned) {
                ++interned;
            }
            for (const TermPtr& child : term->children) {
                walk(child);
            }
        };
    for (const LibraryEntry& entry : library_) {
        walk(entry.body);
        walk(entry.canonical);
    }
    for (const auto& [signature, chunk] : chunks_) {
        for (const rii::AuCachedPair& pair : chunk->pairs) {
            for (const TermPtr& pattern : pair.patterns) {
                walk(pattern);
            }
        }
    }
    for (const auto& [key, result] : results_) {
        for (const TermPtr& body : result->registryBodies) {
            walk(body);
        }
        for (const rii::Solution& s : result->front) {
            walk(s.program);
        }
        for (const auto& [id, eval] : result->evaluations) {
            walk(eval.body);
        }
    }
    return interned;
}

CachedResult
captureResult(const rii::RiiResult& result)
{
    CachedResult cached;
    cached.registryBodies.reserve(result.registry.size());
    for (size_t id = 0; id < result.registry.size(); ++id) {
        cached.registryBodies.push_back(
            result.registry.costBody(static_cast<int64_t>(id)));
    }
    cached.front = result.front;
    cached.stats = result.stats;
    cached.diagnostics = result.diagnostics;
    cached.evaluations.reserve(result.evaluations.size());
    for (const auto& [id, eval] : result.evaluations) {
        cached.evaluations.emplace_back(id, eval);
    }
    std::sort(cached.evaluations.begin(), cached.evaluations.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return cached;
}

rii::RiiResult
rehydrateResult(const CachedResult& cached)
{
    rii::RiiResult result;
    for (size_t i = 0; i < cached.registryBodies.size(); ++i) {
        const int64_t id = result.registry.add(cached.registryBodies[i]);
        ISAMORE_USER_CHECK(
            id == static_cast<int64_t>(i),
            "corpus: cached registry bodies collapse to fewer ids "
            "(corrupt or cross-build corpus)");
    }
    result.front = cached.front;
    result.stats = cached.stats;
    result.diagnostics = cached.diagnostics;
    result.evaluations.reserve(cached.evaluations.size());
    for (const auto& [id, eval] : cached.evaluations) {
        result.evaluations.emplace(id, eval);
    }
    return result;
}

}  // namespace corpus
}  // namespace isamore
