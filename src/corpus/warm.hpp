/**
 * @file
 * The warm-start analysis path: identifyInstructions() backed by a
 * persistent Corpus.
 *
 * A warm run consults the corpus at three levels, coarsest first:
 *
 *  1. **Result cache**: if the (workload, program, mode, rules, config)
 *     key has a stored result, the whole pipeline is skipped and the
 *     cached result rehydrated (corpus.hits).
 *  2. **AU chunk memo**: on a result miss the corpus is attached as the
 *     sweep's AuChunkCache, so anti-unification chunks whose trace
 *     signatures match prior runs -- this run's earlier phases, prior
 *     runs, or other workloads -- replay instead of recomputing
 *     (corpus.skipped_pairs).
 *  3. **Pattern library** (opt-in): WarmOptions::seedLibrary injects
 *     patterns mined from *other* workloads as first-phase candidates,
 *     so e.g. fft-mined patterns cross-match against 2dconv.
 *
 * Levels 1-2 preserve the determinism contract: a warm run's output is
 * byte-identical to the cold run it replaces (modulo wall-clock), at
 * every thread count.  Level 3 deliberately widens the candidate set and
 * is therefore never enabled on golden-checked runs; seeded runs get a
 * distinct result-cache key (seeds are in the config fingerprint).
 */
#pragma once

#include "corpus/corpus.hpp"

namespace isamore {
namespace corpus {

/** Options for a corpus-backed analysis run. */
struct WarmOptions {
    /**
     * Seed the run with the corpus's cross-workload pattern library
     * (RiiConfig::seedPatterns).  Output-changing; off by default.
     */
    bool seedLibrary = false;
};

/**
 * Whether a run with @p config may consult and populate the corpus's
 * result cache.  Requires: a mode whose base program is the input
 * program (everything but Vector), an unlimited run budget, no
 * constrained parent budget, and no armed fault injection -- the same
 * family of conditions under which a replay is guaranteed to reproduce
 * the recorded run.  Ineligible runs still execute normally (and still
 * use the AU chunk memo, which applies its own stricter gate).
 */
bool warmEligible(const rii::RiiConfig& config);

/**
 * identifyInstructions() with corpus warm-start (see file comment).
 * Mutates only @p corpus's in-memory state; persisting to disk remains
 * the caller's decision (save()), which is how read-only corpus mounts
 * stay warm without ever writing.
 */
rii::RiiResult identifyInstructions(const AnalyzedWorkload& analyzed,
                                    const rules::RulesetLibrary& rules,
                                    rii::RiiConfig config, Corpus& corpus,
                                    const WarmOptions& options = {});

}  // namespace corpus
}  // namespace isamore
