#include "corpus/warm.hpp"

#include <set>

#include "support/fault.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"

namespace isamore {
namespace corpus {

bool
warmEligible(const rii::RiiConfig& config)
{
    return config.mode != rii::Mode::Vector && config.budget.unlimited() &&
           (config.parentBudget == nullptr ||
            config.parentBudget->unconstrained()) &&
           !fault::Registry::instance().enabled();
}

rii::RiiResult
identifyInstructions(const AnalyzedWorkload& analyzed,
                     const rules::RulesetLibrary& rules,
                     rii::RiiConfig config, Corpus& corpus,
                     const WarmOptions& options)
{
    const std::string& name = analyzed.workload.name;
    if (options.seedLibrary) {
        std::vector<TermPtr> seeds = corpus.seedPatterns(name);
        config.seedPatterns.insert(config.seedPatterns.end(),
                                   seeds.begin(), seeds.end());
    }

    auto& telemetry = telemetry::Registry::instance();
    const bool eligible = warmEligible(config);
    std::string key;
    if (eligible) {
        key = resultKey(name, programFingerprint(analyzed), config.mode,
                        rulesFingerprint(rules), configFingerprint(config));
        if (const CachedResult* hit = corpus.findResult(key)) {
            const Stopwatch timer;
            rii::RiiResult result = rehydrateResult(*hit);
            result.baseProgram = analyzed.program;
            telemetry.counter("corpus.hits").add(1);
            result.stats.seconds = timer.seconds();
            return result;
        }
        telemetry.counter("corpus.misses").add(1);
    }

    // Cold run with the chunk memo attached; the sweep applies its own
    // stricter replay gate, so attaching is always safe.
    config.au.chunkCache = &corpus;
    rii::RiiResult result =
        isamore::identifyInstructions(analyzed, rules, config);

    if (eligible && !result.diagnostics.degraded()) {
        corpus.storeResult(key, captureResult(result));
    }

    // Feed the front's pattern bodies into the cross-workload library.
    std::set<int64_t> frontIds;
    for (const rii::Solution& solution : result.front) {
        frontIds.insert(solution.patternIds.begin(),
                        solution.patternIds.end());
    }
    std::vector<TermPtr> mined;
    mined.reserve(frontIds.size());
    for (const int64_t id : frontIds) {
        mined.push_back(result.registry.costBody(id));
    }
    const size_t crossHits = corpus.recordMined(name, mined);
    telemetry.counter("corpus.cross_hits").add(
        static_cast<int64_t>(crossHits));
    return result;
}

}  // namespace corpus
}  // namespace isamore
